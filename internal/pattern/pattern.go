// Package pattern implements pattern languages and their compilation to
// ECRPQs (Sections 1, 4 and 7 of the paper).
//
// A pattern is a string over Σ ∪ V (letters and variables); it denotes
// the language obtained by substituting arbitrary strings over Σ for the
// variables, with repeated variables receiving the same string. Pattern
// languages need not be context-free (XX denotes the squared strings),
// yet every pattern compiles to an ECRPQ Qα that finds nodes connected by
// a path whose label lies in the pattern language — the construction of
// Section 4. The undecidability of ECRPQ containment (Theorem 7.1) rests
// on this encoding; MarkedQuery builds the p/p'-decorated variant used in
// that proof.
package pattern

import (
	"fmt"
	"unicode"

	"repro/internal/ecrpq"
	"repro/internal/graph"
	"repro/internal/regex"
	"repro/internal/relations"
)

// Item is one pattern position: a letter of Σ or a variable of V.
type Item struct {
	Letter rune // valid when !IsVar
	Var    rune // valid when IsVar
	IsVar  bool
}

// Pattern is a pattern α = α₁⋯αₙ over Σ ∪ V.
type Pattern struct {
	Items []Item
}

// Parse reads a pattern in the paper's notation: uppercase runes are
// variables, everything else is a letter (e.g. "aXbX").
func Parse(src string) Pattern {
	var p Pattern
	for _, r := range src {
		if unicode.IsUpper(r) {
			p.Items = append(p.Items, Item{Var: r, IsVar: true})
		} else {
			p.Items = append(p.Items, Item{Letter: r})
		}
	}
	return p
}

// String renders the pattern.
func (p Pattern) String() string {
	out := make([]rune, len(p.Items))
	for i, it := range p.Items {
		if it.IsVar {
			out[i] = it.Var
		} else {
			out[i] = it.Letter
		}
	}
	return string(out)
}

// Denotes reports whether w ∈ L_Σ(α) by direct search over variable
// substitutions (the reference semantics; exponential, used for tests
// and small strings).
func (p Pattern) Denotes(w []rune, sigma []rune) bool {
	return denote(p.Items, w, map[rune][]rune{})
}

func denote(items []Item, w []rune, sub map[rune][]rune) bool {
	if len(items) == 0 {
		return len(w) == 0
	}
	it := items[0]
	if !it.IsVar {
		if len(w) == 0 || w[0] != it.Letter {
			return false
		}
		return denote(items[1:], w[1:], sub)
	}
	if s, ok := sub[it.Var]; ok {
		if len(w) < len(s) || string(w[:len(s)]) != string(s) {
			return false
		}
		return denote(items[1:], w[len(s):], sub)
	}
	for l := 0; l <= len(w); l++ {
		sub[it.Var] = w[:l]
		if denote(items[1:], w[l:], sub) {
			delete(sub, it.Var)
			return true
		}
	}
	delete(sub, it.Var)
	return false
}

// ToQuery compiles the pattern to the ECRPQ Qα(x, y) of Section 4: a
// chain of path atoms x₀—π₁→x₁—π₂→…—πₙ→xₙ where letter positions carry
// the singleton language, variable positions carry Σ*, and repeated
// variables are linked by equality relations. The head is Ans(x0, xn).
func (p Pattern) ToQuery(sigma []rune) (*ecrpq.Query, error) {
	if len(p.Items) == 0 {
		return nil, fmt.Errorf("pattern: empty pattern")
	}
	b := ecrpq.NewBuilder()
	varFirst := map[rune]string{}
	eq := relations.Equality(sigma)
	for i, it := range p.Items {
		x := fmt.Sprintf("x%d", i)
		y := fmt.Sprintf("x%d", i+1)
		pi := fmt.Sprintf("pi%d", i+1)
		b.Path(x, pi, y)
		if !it.IsVar {
			b.Rel(relations.FromLanguage(string(it.Letter), regex.Lit(it.Letter)), pi)
			continue
		}
		if first, ok := varFirst[it.Var]; ok {
			b.Rel(eq, first, pi)
		} else {
			varFirst[it.Var] = pi
			star := relations.FromLanguage("Σ*", regex.Kleene(regex.AnyOf(sigma...)))
			b.Rel(star, pi)
		}
	}
	b.HeadNodes("x0", fmt.Sprintf("x%d", len(p.Items)))
	return b.Build()
}

// MatchString reports whether w ∈ L_Σ(α) by evaluating Qα on the string
// graph G_w — exercising the paper's encoding end to end.
func (p Pattern) MatchString(w string, sigma []rune) (bool, error) {
	q, err := p.ToQuery(sigma)
	if err != nil {
		return false, err
	}
	g := graph.NewDB()
	prev := g.AddNode("s0")
	first := prev
	for i, r := range w {
		next := g.AddNode(fmt.Sprintf("s%d", i+1))
		g.AddEdge(prev, r, next)
		prev = next
	}
	res, err := ecrpq.Eval(q, g, ecrpq.Options{
		Bind: map[ecrpq.NodeVar]graph.Node{"x0": first, ecrpq.NodeVar(fmt.Sprintf("x%d", len(p.Items))): prev},
	})
	if err != nil {
		return false, err
	}
	return res.Bool(), nil
}

// MarkedQuery builds the query Q'α of the Theorem 7.1 reduction: Qα
// extended with fresh marker edges p(π₀) before x₀ and p'(πₙ₊₁) after
// xₙ. Marker runes must not occur in sigma. Containment of pattern
// languages — undecidable by Freydenberger–Reidenbach 2010 — reduces to
// containment of such ECRPQs, which is how the paper proves Theorem 7.1;
// this constructor exists so that the reduction can be demonstrated and
// tested on concrete instances.
func (p Pattern) MarkedQuery(sigma []rune, pre, post rune) (*ecrpq.Query, error) {
	q, err := p.ToQuery(sigma)
	if err != nil {
		return nil, err
	}
	n := len(p.Items)
	q.PathAtoms = append([]ecrpq.PathAtom{{X: "xinit", Pi: "pi0", Y: "x0"}}, q.PathAtoms...)
	q.PathAtoms = append(q.PathAtoms, ecrpq.PathAtom{
		X: ecrpq.NodeVar(fmt.Sprintf("x%d", n)), Pi: "piend", Y: "xend"})
	q.RelAtoms = append(q.RelAtoms,
		ecrpq.RelAtom{Rel: relations.FromLanguage(string(pre), regex.Lit(pre)), Args: []ecrpq.PathVar{"pi0"}},
		ecrpq.RelAtom{Rel: relations.FromLanguage(string(post), regex.Lit(post)), Args: []ecrpq.PathVar{"piend"}},
	)
	q.HeadNodes = nil // Boolean, as in the proof
	return q, q.Validate()
}
