package pattern

import (
	"math/rand"
	"testing"
	"testing/quick"
)

var sigmaAB = []rune{'a', 'b'}

func TestParseAndString(t *testing.T) {
	p := Parse("aXbX")
	if len(p.Items) != 4 || p.Items[1].Var != 'X' || !p.Items[1].IsVar || p.Items[0].Letter != 'a' {
		t.Fatalf("parsed %v", p.Items)
	}
	if p.String() != "aXbX" {
		t.Errorf("String = %q", p.String())
	}
}

func TestDenotes(t *testing.T) {
	// Paper's example: aXbX = { a·w·b·w }.
	p := Parse("aXbX")
	yes := []string{"ab", "aaba", "abbb", "aabbab"} // a·w·b·w for w = ε, a, b, ab
	no := []string{"", "ba", "aabb", "abab", "aabab"}
	for _, w := range yes {
		if !p.Denotes([]rune(w), sigmaAB) {
			t.Errorf("aXbX should denote %q", w)
		}
	}
	for _, w := range no {
		if p.Denotes([]rune(w), sigmaAB) {
			t.Errorf("aXbX should not denote %q", w)
		}
	}
	// Squared strings XX.
	sq := Parse("XX")
	if !sq.Denotes([]rune("abab"), sigmaAB) || sq.Denotes([]rune("aba"), sigmaAB) {
		t.Error("XX wrong")
	}
	if !sq.Denotes([]rune(""), sigmaAB) {
		t.Error("ε = ε·ε is a square")
	}
}

func TestMatchStringAgainstDenotes(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	pats := []Pattern{Parse("XX"), Parse("aXbX"), Parse("XaY"), Parse("XYX")}
	f := func(uint8) bool {
		p := pats[r.Intn(len(pats))]
		n := r.Intn(5)
		w := make([]rune, n)
		for i := range w {
			w[i] = sigmaAB[r.Intn(2)]
		}
		want := p.Denotes(w, sigmaAB)
		got, err := p.MatchString(string(w), sigmaAB)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Logf("pattern %s word %q: query=%v direct=%v", p, string(w), got, want)
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestToQueryShape(t *testing.T) {
	p := Parse("aXbX")
	q, err := p.ToQuery(sigmaAB)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.PathAtoms) != 4 {
		t.Errorf("Qα should have 4 path atoms, got %d", len(q.PathAtoms))
	}
	// Atoms: a, Σ*, b, plus one equality linking the two X's.
	eqCount := 0
	for _, ra := range q.RelAtoms {
		if ra.Rel.Arity == 2 {
			eqCount++
		}
	}
	if eqCount != 1 {
		t.Errorf("one equality atom expected, got %d", eqCount)
	}
	if _, err := (Pattern{}).ToQuery(sigmaAB); err == nil {
		t.Error("empty pattern should error")
	}
}

func TestMarkedQuery(t *testing.T) {
	p := Parse("XX")
	q, err := p.MarkedQuery(sigmaAB, 'p', 'q')
	if err != nil {
		t.Fatal(err)
	}
	if !q.IsBoolean() {
		t.Error("marked query should be Boolean")
	}
	if len(q.PathAtoms) != 4 { // 2 pattern atoms + 2 markers
		t.Errorf("marked query has %d path atoms", len(q.PathAtoms))
	}
}
