package automata

import "fmt"

// LengthSet is an exact, ultimately periodic representation of the set of
// word lengths accepted by an automaton: Claim 6.7.2 of the paper rests on
// the fact (Chrobak 1986, corrected by To 2009) that a unary NFA accepts a
// union of arithmetic progressions. We compute the representation by
// iterating the boolean reachability vector "states reachable by words of
// length exactly L" until it cycles; this yields the exact preperiod μ and
// period p of the length set.
type LengthSet struct {
	// Accept[L] for L < Mu+Period records membership of length L;
	// for L ≥ Mu, membership equals Accept[Mu + (L-Mu) mod Period].
	Accept []bool
	Mu     int // preperiod
	Period int // period ≥ 1
}

// Lengths computes the LengthSet of n: the set { |w| : w ∈ L(n) }.
// ε-transitions are allowed. The computation is exact; its cost is the
// number of distinct reachability vectors, which is small for the graph
// and relation automata arising in practice (worst case exponential, as
// the theory demands).
func Lengths[S comparable](n *NFA[S]) LengthSet {
	// Successor sets by one symbol (any symbol), after ε-closure.
	cur := n.EpsClosure(n.start)
	key := func(states []int) string { return fmt.Sprint(states) }
	seen := map[string]int{} // vector -> first index L
	var accepts []bool
	var states [][]int
	for {
		k := key(cur)
		if first, ok := seen[k]; ok {
			return LengthSet{Accept: accepts, Mu: first, Period: len(accepts) - first}
		}
		seen[k] = len(accepts)
		accepts = append(accepts, n.containsFinal(cur))
		states = append(states, cur)
		// one step by any symbol
		succ := map[int]bool{}
		for _, q := range cur {
			for _, tos := range n.trans[q] {
				for _, to := range tos {
					succ[to] = true
				}
			}
		}
		cur = n.EpsClosure(sortedKeys(succ))
		_ = states
	}
}

// Contains reports whether length L ≥ 0 is in the set.
func (s LengthSet) Contains(L int) bool {
	if L < len(s.Accept) {
		return s.Accept[L]
	}
	return s.Accept[s.Mu+(L-s.Mu)%s.Period]
}

// IsEmpty reports whether no length is accepted.
func (s LengthSet) IsEmpty() bool {
	for _, a := range s.Accept {
		if a {
			return false
		}
	}
	return true
}

// Progression is the arithmetic progression Base + Step·ℕ; Step = 0
// denotes the singleton {Base}.
type Progression struct {
	Base, Step int
}

// Contains reports membership of x in the progression.
func (p Progression) Contains(x int) bool {
	if p.Step == 0 {
		return x == p.Base
	}
	return x >= p.Base && (x-p.Base)%p.Step == 0
}

// Progressions decomposes the length set into finitely many arithmetic
// progressions whose union is exactly the set (the form used by
// Claim 6.7.2 and by the Presburger encodings of Section 6.3).
func (s LengthSet) Progressions() []Progression {
	var out []Progression
	// Finite part: lengths < Mu.
	for L := 0; L < s.Mu; L++ {
		if s.Accept[L] {
			out = append(out, Progression{Base: L, Step: 0})
		}
	}
	// Periodic part: residues r with Accept[Mu+r].
	for r := 0; r < s.Period; r++ {
		if s.Accept[s.Mu+r] {
			out = append(out, Progression{Base: s.Mu + r, Step: s.Period})
		}
	}
	return out
}

// MaxFiniteProbe returns a length B such that probing membership for all
// L ≤ B fully determines the set (one full period past the preperiod);
// used by tests to compare against brute force.
func (s LengthSet) MaxFiniteProbe() int { return s.Mu + 2*s.Period }
