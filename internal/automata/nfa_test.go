package automata

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/regex"
)

func runes(s string) []rune { return []rune(s) }

func nfaFor(t *testing.T, src string) *NFA[rune] {
	t.Helper()
	return FromRegex(regex.MustParse(src))
}

func TestFromRegexAccepts(t *testing.T) {
	cases := []struct {
		re  string
		yes []string
		no  []string
	}{
		{"a", []string{"a"}, []string{"", "aa", "b"}},
		{"(a|b)*c", []string{"c", "abc", "bbac"}, []string{"", "ab", "cb"}},
		{"a+b?", []string{"a", "ab", "aaa", "aab"}, []string{"", "b", "abb"}},
		{"()", []string{""}, []string{"a"}},
		{"[]", nil, []string{"", "a"}},
		{"(ab)*", []string{"", "ab", "abab"}, []string{"a", "ba"}},
	}
	for _, c := range cases {
		n := nfaFor(t, c.re)
		for _, w := range c.yes {
			if !n.Accepts(runes(w)) {
				t.Errorf("NFA(%q) rejects %q", c.re, w)
			}
		}
		for _, w := range c.no {
			if n.Accepts(runes(w)) {
				t.Errorf("NFA(%q) accepts %q", c.re, w)
			}
		}
	}
}

// words enumerates all words over sigma of length ≤ maxLen.
func words(sigma []rune, maxLen int) [][]rune {
	out := [][]rune{{}}
	frontier := [][]rune{{}}
	for l := 0; l < maxLen; l++ {
		var next [][]rune
		for _, w := range frontier {
			for _, a := range sigma {
				nw := append(append([]rune(nil), w...), a)
				next = append(next, nw)
				out = append(out, nw)
			}
		}
		frontier = next
	}
	return out
}

func TestPropertyNFAMatchesDerivatives(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	sigma := []rune{'a', 'b', 'c'}
	ws := words(sigma, 5)
	f := func() bool {
		node := randomExpr(r, 4)
		n := FromRegex(node)
		for _, w := range ws {
			if n.Accepts(w) != regex.Match(node, w) {
				t.Logf("mismatch for %s on %q", regex.String(node), string(w))
				return false
			}
		}
		return true
	}
	if err := quick.Check(func(uint8) bool { return f() }, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// randomExpr mirrors the generator in package regex (not exported there).
func randomExpr(r *rand.Rand, depth int) *regex.Node[rune] {
	if depth == 0 || r.Intn(4) == 0 {
		switch r.Intn(4) {
		case 0:
			return regex.Lit('a')
		case 1:
			return regex.Lit('b')
		case 2:
			return regex.Eps[rune]()
		default:
			return regex.Lit('c')
		}
	}
	switch r.Intn(3) {
	case 0:
		return regex.Seq(randomExpr(r, depth-1), randomExpr(r, depth-1))
	case 1:
		return regex.Or(randomExpr(r, depth-1), randomExpr(r, depth-1))
	default:
		return regex.Kleene(randomExpr(r, depth-1))
	}
}

func TestIntersect(t *testing.T) {
	a := nfaFor(t, "(a|b)*a")   // ends with a
	b := nfaFor(t, "a(a|b)*")   // starts with a
	both := Intersect(a, b)
	sigma := []rune{'a', 'b'}
	for _, w := range words(sigma, 5) {
		want := a.Accepts(w) && b.Accepts(w)
		if got := both.Accepts(w); got != want {
			t.Errorf("Intersect on %q = %v, want %v", string(w), got, want)
		}
	}
}

func TestUnionConcatReverse(t *testing.T) {
	a := nfaFor(t, "ab")
	b := nfaFor(t, "ba")
	sigma := []rune{'a', 'b'}
	u := Union(a, b)
	c := Concat(a, b)
	rev := Reverse(c)
	for _, w := range words(sigma, 5) {
		if got, want := u.Accepts(w), a.Accepts(w) || b.Accepts(w); got != want {
			t.Errorf("Union on %q = %v, want %v", string(w), got, want)
		}
	}
	if !c.Accepts(runes("abba")) || c.Accepts(runes("ab")) {
		t.Error("Concat(ab, ba) wrong")
	}
	if !rev.Accepts(runes("abba")) {
		t.Error("Reverse(abba) should accept abba (palindrome)")
	}
	if rev.Accepts(runes("baab")) != true {
		// reversal of {abba} is {abba}
		t.Skip("unused")
	}
}

func TestReverseNonPalindrome(t *testing.T) {
	c := nfaFor(t, "abc")
	rev := Reverse(c)
	if !rev.Accepts(runes("cba")) || rev.Accepts(runes("abc")) {
		t.Error("Reverse(abc) should accept exactly cba")
	}
}

func TestDeterminizeComplementMinimize(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	sigma := []rune{'a', 'b', 'c'}
	ws := words(sigma, 5)
	for i := 0; i < 60; i++ {
		node := randomExpr(r, 4)
		n := FromRegex(node)
		d := Determinize(n, sigma)
		comp := d.Complement()
		min := d.Minimize()
		for _, w := range ws {
			want := n.Accepts(w)
			if d.Accepts(w) != want {
				t.Fatalf("DFA disagrees with NFA for %s on %q", regex.String(node), string(w))
			}
			if comp.Accepts(w) == want {
				t.Fatalf("Complement wrong for %s on %q", regex.String(node), string(w))
			}
			if min.Accepts(w) != want {
				t.Fatalf("Minimize wrong for %s on %q", regex.String(node), string(w))
			}
		}
	}
}

func TestMinimizeIsMinimal(t *testing.T) {
	// Two different expressions for the same language must minimize to the
	// same number of states.
	sigma := []rune{'a', 'b'}
	m1 := Determinize(nfaFor(t, "(a|b)*abb"), sigma).Minimize()
	m2 := Determinize(nfaFor(t, "(a|b)*abb"), sigma).Minimize()
	if m1.NumStates() != m2.NumStates() {
		t.Errorf("minimal sizes differ: %d vs %d", m1.NumStates(), m2.NumStates())
	}
	// Classic: minimal DFA for (a|b)*abb has 4 states (complete).
	if m1.NumStates() != 4 {
		t.Errorf("minimal DFA for (a|b)*abb has %d states, want 4", m1.NumStates())
	}
}

func TestSubsetEquivalent(t *testing.T) {
	sigma := []rune{'a', 'b'}
	a := nfaFor(t, "ab*")
	b := nfaFor(t, "a(a|b)*")
	if !Subset(a, b, sigma) {
		t.Error("ab* ⊆ a(a|b)* should hold")
	}
	if Subset(b, a, sigma) {
		t.Error("a(a|b)* ⊆ ab* should not hold")
	}
	c := nfaFor(t, "(a|b)*")
	d := nfaFor(t, "(b|a)*")
	if !Equivalent(c, d, sigma) {
		t.Error("(a|b)* ≡ (b|a)* should hold")
	}
}

func TestIsEmptyShortest(t *testing.T) {
	if !nfaFor(t, "[]").IsEmpty() {
		t.Error("∅ should be empty")
	}
	if nfaFor(t, "a*").IsEmpty() {
		t.Error("a* should be nonempty")
	}
	w, ok := nfaFor(t, "aa(b|c)").ShortestAccepted()
	if !ok || len(w) != 3 {
		t.Errorf("ShortestAccepted = %q, %v; want length 3", string(w), ok)
	}
	w, ok = nfaFor(t, "a*").ShortestAccepted()
	if !ok || len(w) != 0 {
		t.Errorf("ShortestAccepted(a*) = %q, want ε", string(w))
	}
	// Intersection of disjoint languages is empty.
	x := Intersect(nfaFor(t, "a+"), nfaFor(t, "b+"))
	if !x.IsEmpty() {
		t.Error("a+ ∩ b+ should be empty")
	}
}

func TestEnumerateAccepted(t *testing.T) {
	n := nfaFor(t, "a(b|c)")
	got := n.EnumerateAccepted(10, 4)
	if len(got) != 2 {
		t.Fatalf("EnumerateAccepted = %d words, want 2", len(got))
	}
	seen := map[string]bool{}
	for _, w := range got {
		seen[string(w)] = true
	}
	if !seen["ab"] || !seen["ac"] {
		t.Errorf("EnumerateAccepted = %v", got)
	}
	// limit respected
	inf := nfaFor(t, "a*")
	got = inf.EnumerateAccepted(5, 100)
	if len(got) != 5 {
		t.Errorf("limit not respected: %d", len(got))
	}
}

func TestTrim(t *testing.T) {
	n := NewNFA[rune]()
	q0 := n.AddState()
	q1 := n.AddState()
	dead := n.AddState()   // reachable, not co-reachable
	orphan := n.AddState() // unreachable
	n.SetStart(q0)
	n.SetFinal(q1, true)
	n.AddTransition(q0, 'a', q1)
	n.AddTransition(q0, 'b', dead)
	n.AddTransition(orphan, 'a', q1)
	tr := Trim(n)
	if tr.NumStates() != 2 {
		t.Errorf("Trim left %d states, want 2", tr.NumStates())
	}
	if !tr.Accepts(runes("a")) || tr.Accepts(runes("b")) {
		t.Error("Trim changed the language")
	}
}

func TestMapSymbolsProjection(t *testing.T) {
	// Automaton over pairs; project to first component.
	pair := func(x, y rune) string { return string([]rune{x, y}) }
	n := NewNFA[string]()
	q0, q1 := n.AddState(), n.AddState()
	n.SetStart(q0)
	n.SetFinal(q1, true)
	n.AddTransition(q0, pair('a', 'x'), q1)
	n.AddTransition(q0, pair('b', 'y'), q1)
	proj := MapSymbols(n, func(s string) rune { return []rune(s)[0] })
	if !proj.Accepts(runes("a")) || !proj.Accepts(runes("b")) || proj.Accepts(runes("x")) {
		t.Error("projection wrong")
	}
}

func TestFilterTransitions(t *testing.T) {
	n := nfaFor(t, "(a|b)*")
	f := FilterTransitions(n, func(r rune) bool { return r == 'a' })
	if !f.Accepts(runes("aaa")) || f.Accepts(runes("ab")) {
		t.Error("FilterTransitions wrong")
	}
}

func TestLengthsBasic(t *testing.T) {
	cases := []struct {
		re      string
		inside  []int
		outside []int
	}{
		{"(aa)*", []int{0, 2, 4, 100}, []int{1, 3, 99}},
		{"a(bb)*", []int{1, 3, 5}, []int{0, 2, 4}},
		{"aaa", []int{3}, []int{0, 1, 2, 4, 5}},
		{"a*b*", []int{0, 1, 2, 7}, nil},
		{"[]", nil, []int{0, 1, 2}},
		{"(aaa)*|(aaaaa)*", []int{0, 3, 5, 6, 9, 10}, []int{1, 2, 4, 7}},
	}
	for _, c := range cases {
		ls := Lengths(nfaFor(t, c.re))
		for _, L := range c.inside {
			if !ls.Contains(L) {
				t.Errorf("Lengths(%q) should contain %d (set %+v)", c.re, L, ls)
			}
		}
		for _, L := range c.outside {
			if ls.Contains(L) {
				t.Errorf("Lengths(%q) should not contain %d (set %+v)", c.re, L, ls)
			}
		}
	}
}

func TestLengthsAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 60; i++ {
		node := randomExpr(r, 4)
		n := FromRegex(node)
		ls := Lengths(n)
		// Brute force: for each length probe whether any accepted word of
		// that length exists, via subset BFS by length.
		cur := n.EpsClosure(n.Start())
		bound := ls.MaxFiniteProbe() + 3
		if bound > 60 {
			bound = 60
		}
		for L := 0; L <= bound; L++ {
			want := n.containsFinal(cur)
			if got := ls.Contains(L); got != want {
				t.Fatalf("Lengths(%s) at %d = %v, want %v", regex.String(node), L, got, want)
			}
			// step by all symbols
			succ := map[int]bool{}
			for _, q := range cur {
				for _, tos := range n.trans[q] {
					for _, to := range tos {
						succ[to] = true
					}
				}
			}
			cur = n.EpsClosure(sortedKeys(succ))
		}
	}
}

func TestProgressions(t *testing.T) {
	ls := Lengths(nfaFor(t, "a(bb)*"))
	ps := ls.Progressions()
	contains := func(x int) bool {
		for _, p := range ps {
			if p.Contains(x) {
				return true
			}
		}
		return false
	}
	for L := 0; L <= 30; L++ {
		if contains(L) != ls.Contains(L) {
			t.Errorf("progression decomposition differs at %d", L)
		}
	}
}

func TestIsFinalAndStates(t *testing.T) {
	n := NewNFA[rune]()
	q := n.AddState()
	if n.IsFinal(q) {
		t.Error("fresh state should not be final")
	}
	n.SetFinal(q, true)
	if !n.IsFinal(q) || len(n.FinalStates()) != 1 {
		t.Error("SetFinal not reflected")
	}
	n.ClearFinal()
	if len(n.FinalStates()) != 0 {
		t.Error("ClearFinal not reflected")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := nfaFor(t, "ab")
	b := a.Clone()
	b.SetFinal(0, true) // mutate clone
	if a.IsFinal(0) {
		t.Error("Clone shares final slice")
	}
}

func TestPropertyReverseInvolution(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	sigma := []rune{'a', 'b', 'c'}
	ws := words(sigma, 4)
	for i := 0; i < 40; i++ {
		node := randomExpr(r, 4)
		n := FromRegex(node)
		rr := Reverse(Reverse(n))
		for _, w := range ws {
			if n.Accepts(w) != rr.Accepts(w) {
				t.Fatalf("Reverse∘Reverse changed language of %s on %q", regex.String(node), string(w))
			}
		}
	}
}

func TestPropertyReverseSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	sigma := []rune{'a', 'b'}
	ws := words(sigma, 4)
	rev := func(w []rune) []rune {
		out := make([]rune, len(w))
		for i, c := range w {
			out[len(w)-1-i] = c
		}
		return out
	}
	for i := 0; i < 40; i++ {
		node := randomExpr(r, 4)
		n := FromRegex(node)
		nr := Reverse(n)
		for _, w := range ws {
			if nr.Accepts(w) != n.Accepts(rev(w)) {
				t.Fatalf("Reverse semantics wrong for %s on %q", regex.String(node), string(w))
			}
		}
	}
}

func TestPropertyMinimizeIsCanonical(t *testing.T) {
	// Equivalent regexes minimize to DFAs of identical size.
	pairs := [][2]string{
		{"(a|b)*", "(b|a)*"},
		{"a(ba)*", "(ab)*a"},
		{"aa*", "a+"},
		{"(a|b)(a|b)", "aa|ab|ba|bb"},
	}
	sigma := []rune{'a', 'b'}
	for _, p := range pairs {
		m1 := Determinize(nfaFor(t, p[0]), sigma).Minimize()
		m2 := Determinize(nfaFor(t, p[1]), sigma).Minimize()
		if m1.NumStates() != m2.NumStates() {
			t.Errorf("%s vs %s: minimal sizes %d vs %d", p[0], p[1], m1.NumStates(), m2.NumStates())
		}
	}
}

func TestPropertyTrimPreservesLanguage(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	sigma := []rune{'a', 'b', 'c'}
	ws := words(sigma, 4)
	for i := 0; i < 40; i++ {
		node := randomExpr(r, 4)
		n := FromRegex(node)
		tr := Trim(n)
		for _, w := range ws {
			if n.Accepts(w) != tr.Accepts(w) {
				t.Fatalf("Trim changed language of %s on %q", regex.String(node), string(w))
			}
		}
		if tr.NumStates() > n.NumStates() {
			t.Fatal("Trim grew the automaton")
		}
	}
}

func TestPropertyConcatSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(24))
	sigma := []rune{'a', 'b'}
	ws := words(sigma, 5)
	for i := 0; i < 30; i++ {
		n1 := randomExpr(r, 3)
		n2 := randomExpr(r, 3)
		cat := Concat(FromRegex(n1), FromRegex(n2))
		want := FromRegex(regex.Seq(n1, n2))
		for _, w := range ws {
			if cat.Accepts(w) != want.Accepts(w) {
				t.Fatalf("Concat mismatch for %s·%s on %q", regex.String(n1), regex.String(n2), string(w))
			}
		}
	}
}

func TestLengthSetIsEmpty(t *testing.T) {
	if !Lengths(nfaFor(t, "[]")).IsEmpty() {
		t.Error("∅ length set should be empty")
	}
	if Lengths(nfaFor(t, "a*")).IsEmpty() {
		t.Error("a* length set should not be empty")
	}
}
