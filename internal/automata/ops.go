package automata

import (
	"fmt"
	"sort"
	"strings"
)

// Intersect returns an NFA for L(a) ∩ L(b) via the synchronized product.
// ε-transitions in either factor are handled by interleaving (one side
// moves on ε while the other stays).
func Intersect[S comparable](a, b *NFA[S]) *NFA[S] {
	type pair struct{ qa, qb int }
	out := NewNFA[S]()
	ids := map[pair]int{}
	var todo []pair
	stateOf := func(p pair) int {
		if id, ok := ids[p]; ok {
			return id
		}
		id := out.AddState()
		ids[p] = id
		out.SetFinal(id, a.final[p.qa] && b.final[p.qb])
		todo = append(todo, p)
		return id
	}
	for _, sa := range a.start {
		for _, sb := range b.start {
			out.SetStart(stateOf(pair{sa, sb}))
		}
	}
	for len(todo) > 0 {
		p := todo[len(todo)-1]
		todo = todo[:len(todo)-1]
		from := ids[p]
		for _, ra := range a.eps[p.qa] {
			out.AddEps(from, stateOf(pair{ra, p.qb}))
		}
		for _, rb := range b.eps[p.qb] {
			out.AddEps(from, stateOf(pair{p.qa, rb}))
		}
		for sym, tas := range a.trans[p.qa] {
			tbs := b.trans[p.qb][sym]
			for _, ta := range tas {
				for _, tb := range tbs {
					out.AddTransition(from, sym, stateOf(pair{ta, tb}))
				}
			}
		}
	}
	return out
}

// Union returns an NFA for L(a) ∪ L(b) (disjoint union of the automata).
func Union[S comparable](a, b *NFA[S]) *NFA[S] {
	out := a.Clone()
	off := out.AddStates(b.NumStates())
	b.EachTransition(func(from int, sym S, to int) { out.AddTransition(from+off, sym, to+off) })
	for q, es := range b.eps {
		for _, r := range es {
			out.AddEps(q+off, r+off)
		}
	}
	for _, s := range b.start {
		out.SetStart(s + off)
	}
	for q, f := range b.final {
		if f {
			out.SetFinal(q+off, true)
		}
	}
	return out
}

// Concat returns an NFA for L(a)·L(b).
func Concat[S comparable](a, b *NFA[S]) *NFA[S] {
	out := a.Clone()
	off := out.AddStates(b.NumStates())
	b.EachTransition(func(from int, sym S, to int) { out.AddTransition(from+off, sym, to+off) })
	for q, es := range b.eps {
		for _, r := range es {
			out.AddEps(q+off, r+off)
		}
	}
	for q, f := range a.final {
		if f {
			out.SetFinal(q, false)
			for _, s := range b.start {
				out.AddEps(q, s+off)
			}
		}
	}
	for q, f := range b.final {
		if f {
			out.SetFinal(q+off, true)
		}
	}
	return out
}

// MapSymbols returns the NFA obtained by renaming every transition symbol
// through f. If f merges symbols the language is the image of L(n) under
// the induced word map; this implements the projection step of the
// paper's constructions (e.g. projecting an m-tape automaton onto a subset
// of tapes, Section 5).
func MapSymbols[S, T comparable](n *NFA[S], f func(S) T) *NFA[T] {
	out := NewNFA[T]()
	out.AddStates(n.NumStates())
	n.EachTransition(func(from int, a S, to int) { out.AddTransition(from, f(a), to) })
	for q, es := range n.eps {
		for _, r := range es {
			out.AddEps(q, r)
		}
	}
	for _, s := range n.start {
		out.SetStart(s)
	}
	for q, fin := range n.final {
		if fin {
			out.SetFinal(q, true)
		}
	}
	return out
}

// FilterTransitions returns a copy of n retaining only transitions whose
// symbol satisfies keep. This restricts the automaton to a sub-alphabet.
func FilterTransitions[S comparable](n *NFA[S], keep func(S) bool) *NFA[S] {
	out := NewNFA[S]()
	out.AddStates(n.NumStates())
	n.EachTransition(func(from int, a S, to int) {
		if keep(a) {
			out.AddTransition(from, a, to)
		}
	})
	for q, es := range n.eps {
		for _, r := range es {
			out.AddEps(q, r)
		}
	}
	for _, s := range n.start {
		out.SetStart(s)
	}
	for q, fin := range n.final {
		if fin {
			out.SetFinal(q, true)
		}
	}
	return out
}

// Reverse returns an NFA for the reversal of L(n).
func Reverse[S comparable](n *NFA[S]) *NFA[S] {
	out := NewNFA[S]()
	out.AddStates(n.NumStates())
	n.EachTransition(func(from int, a S, to int) { out.AddTransition(to, a, from) })
	for q, es := range n.eps {
		for _, r := range es {
			out.AddEps(r, q)
		}
	}
	for q, fin := range n.final {
		if fin {
			out.SetStart(q)
		}
	}
	for _, s := range n.start {
		out.SetFinal(s, true)
	}
	return out
}

// Trim returns a copy of n restricted to states that are both reachable
// from a start state and co-reachable to a final state. Products grow
// multiplicatively, so trimming between constructions keeps the paper's
// pipelines (A_Q × Gᵐ, Section 6) tractable in practice.
func Trim[S comparable](n *NFA[S]) *NFA[S] {
	reach := make([]bool, n.NumStates())
	var stack []int
	for _, s := range n.start {
		if !reach[s] {
			reach[s] = true
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		push := func(r int) {
			if !reach[r] {
				reach[r] = true
				stack = append(stack, r)
			}
		}
		for _, r := range n.eps[q] {
			push(r)
		}
		for _, tos := range n.trans[q] {
			for _, r := range tos {
				push(r)
			}
		}
	}
	// Reverse reachability from finals.
	rev := make([][]int, n.NumStates())
	n.EachTransition(func(from int, _ S, to int) { rev[to] = append(rev[to], from) })
	for q, es := range n.eps {
		for _, r := range es {
			rev[r] = append(rev[r], q)
		}
	}
	co := make([]bool, n.NumStates())
	for q, f := range n.final {
		if f && !co[q] {
			co[q] = true
			stack = append(stack, q)
		}
	}
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, r := range rev[q] {
			if !co[r] {
				co[r] = true
				stack = append(stack, r)
			}
		}
	}
	keep := make([]int, n.NumStates())
	out := NewNFA[S]()
	for q := range keep {
		if reach[q] && co[q] {
			keep[q] = out.AddState()
		} else {
			keep[q] = -1
		}
	}
	n.EachTransition(func(from int, a S, to int) {
		if keep[from] >= 0 && keep[to] >= 0 {
			out.AddTransition(keep[from], a, keep[to])
		}
	})
	for q, es := range n.eps {
		for _, r := range es {
			if keep[q] >= 0 && keep[r] >= 0 {
				out.AddEps(keep[q], keep[r])
			}
		}
	}
	for _, s := range n.start {
		if keep[s] >= 0 {
			out.SetStart(keep[s])
		}
	}
	for q, f := range n.final {
		if f && keep[q] >= 0 {
			out.SetFinal(keep[q], true)
		}
	}
	return out
}

// DFA is a deterministic, complete automaton over an explicit alphabet.
// State 0..NumStates-1; Delta is total over Alphabet.
type DFA[S comparable] struct {
	Alphabet []S
	Start    int
	Final    []bool
	Delta    []map[S]int
}

// NumStates returns the number of states.
func (d *DFA[S]) NumStates() int { return len(d.Delta) }

// Accepts reports whether the DFA accepts w. Symbols outside the alphabet
// reject.
func (d *DFA[S]) Accepts(w []S) bool {
	q := d.Start
	for _, a := range w {
		nq, ok := d.Delta[q][a]
		if !ok {
			return false
		}
		q = nq
	}
	return d.Final[q]
}

// Determinize converts n to a complete DFA over the given alphabet via the
// subset construction. Symbols of n outside alphabet are ignored.
func Determinize[S comparable](n *NFA[S], alphabet []S) *DFA[S] {
	keyOf := func(states []int) string {
		var b strings.Builder
		for _, q := range states {
			fmt.Fprintf(&b, "%d,", q)
		}
		return b.String()
	}
	d := &DFA[S]{Alphabet: append([]S(nil), alphabet...)}
	ids := map[string]int{}
	var sets [][]int
	stateOf := func(states []int) int {
		k := keyOf(states)
		if id, ok := ids[k]; ok {
			return id
		}
		id := len(d.Delta)
		ids[k] = id
		d.Delta = append(d.Delta, make(map[S]int, len(alphabet)))
		d.Final = append(d.Final, n.containsFinal(states))
		sets = append(sets, states)
		return id
	}
	d.Start = stateOf(n.EpsClosure(n.start))
	for i := 0; i < len(d.Delta); i++ {
		for _, a := range alphabet {
			d.Delta[i][a] = stateOf(n.Step(sets[i], a))
		}
	}
	return d
}

// Complement returns a DFA for the complement of d with respect to
// Alphabet*.
func (d *DFA[S]) Complement() *DFA[S] {
	out := &DFA[S]{Alphabet: d.Alphabet, Start: d.Start, Delta: d.Delta}
	out.Final = make([]bool, len(d.Final))
	for i, f := range d.Final {
		out.Final[i] = !f
	}
	return out
}

// ToNFA converts the DFA to an equivalent NFA.
func (d *DFA[S]) ToNFA() *NFA[S] {
	n := NewNFA[S]()
	n.AddStates(d.NumStates())
	for q, m := range d.Delta {
		for a, r := range m {
			n.AddTransition(q, a, r)
		}
	}
	n.SetStart(d.Start)
	for q, f := range d.Final {
		if f {
			n.SetFinal(q, true)
		}
	}
	return n
}

// Minimize returns the minimal DFA equivalent to d (Moore partition
// refinement). The result is complete over the same alphabet.
func (d *DFA[S]) Minimize() *DFA[S] {
	n := d.NumStates()
	// Initial partition: final vs non-final.
	class := make([]int, n)
	for q, f := range d.Final {
		if f {
			class[q] = 1
		}
	}
	numClasses := 2
	for {
		// Signature: own class + class of each successor.
		sig := make([]string, n)
		for q := 0; q < n; q++ {
			var b strings.Builder
			fmt.Fprintf(&b, "%d", class[q])
			for _, a := range d.Alphabet {
				fmt.Fprintf(&b, ",%d", class[d.Delta[q][a]])
			}
			sig[q] = b.String()
		}
		ids := map[string]int{}
		newClass := make([]int, n)
		for q := 0; q < n; q++ {
			id, ok := ids[sig[q]]
			if !ok {
				id = len(ids)
				ids[sig[q]] = id
			}
			newClass[q] = id
		}
		if len(ids) == numClasses {
			break
		}
		numClasses = len(ids)
		class = newClass
	}
	out := &DFA[S]{Alphabet: d.Alphabet, Start: class[d.Start]}
	out.Delta = make([]map[S]int, numClasses)
	out.Final = make([]bool, numClasses)
	for q := 0; q < n; q++ {
		c := class[q]
		if out.Delta[c] == nil {
			out.Delta[c] = make(map[S]int, len(d.Alphabet))
			for _, a := range d.Alphabet {
				out.Delta[c][a] = class[d.Delta[q][a]]
			}
			out.Final[c] = d.Final[q]
		}
	}
	// Drop states unreachable from start (minimal DFA must be reachable).
	reach := make([]bool, numClasses)
	stack := []int{out.Start}
	reach[out.Start] = true
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, a := range out.Alphabet {
			r := out.Delta[q][a]
			if !reach[r] {
				reach[r] = true
				stack = append(stack, r)
			}
		}
	}
	remap := make([]int, numClasses)
	final := &DFA[S]{Alphabet: out.Alphabet}
	for q := 0; q < numClasses; q++ {
		if reach[q] {
			remap[q] = len(final.Delta)
			final.Delta = append(final.Delta, nil)
			final.Final = append(final.Final, out.Final[q])
		} else {
			remap[q] = -1
		}
	}
	for q := 0; q < numClasses; q++ {
		if !reach[q] {
			continue
		}
		m := make(map[S]int, len(out.Alphabet))
		for _, a := range out.Alphabet {
			m[a] = remap[out.Delta[q][a]]
		}
		final.Delta[remap[q]] = m
	}
	final.Start = remap[out.Start]
	return final
}

// Subset reports whether L(a) ⊆ L(b), both considered over the given
// alphabet: it checks emptiness of L(a) ∩ complement(L(b)). This is the
// decision procedure behind RPQ containment (Section 7 of the paper).
func Subset[S comparable](a, b *NFA[S], alphabet []S) bool {
	db := Determinize(b, alphabet)
	comp := db.Complement().ToNFA()
	return Intersect(a, comp).IsEmpty()
}

// Equivalent reports whether L(a) = L(b) over the given alphabet.
func Equivalent[S comparable](a, b *NFA[S], alphabet []S) bool {
	return Subset(a, b, alphabet) && Subset(b, a, alphabet)
}

// MergeAlphabets returns the deduplicated union of the given alphabets in
// a deterministic order (insertion order of first occurrence).
func MergeAlphabets[S comparable](alphas ...[]S) []S {
	seen := map[S]bool{}
	var out []S
	for _, al := range alphas {
		for _, a := range al {
			if !seen[a] {
				seen[a] = true
				out = append(out, a)
			}
		}
	}
	return out
}

// SortInts sorts ints ascending and returns the slice (test convenience).
func SortInts(xs []int) []int { sort.Ints(xs); return xs }
