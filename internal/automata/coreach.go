package automata

// CoReachable reports, for every state, whether some accepting state is
// reachable from it via any sequence of symbol and ε transitions (i.e.
// whether the state is co-accessible). States for which this is false
// are dead for acceptance purposes: once a run enters one it can never
// accept, no matter the remaining input.
//
// The joint relation runner (package relations) uses this per-atom
// analysis to prune subset states — and, transitively, product states of
// the evaluator — that cannot contribute to any answer.
func CoReachable[S comparable](n *NFA[S]) []bool {
	co := make([]bool, n.NumStates())
	rev := make([][]int32, n.NumStates())
	for q := range n.trans {
		for _, tos := range n.trans[q] {
			for _, to := range tos {
				rev[to] = append(rev[to], int32(q))
			}
		}
	}
	for q, es := range n.eps {
		for _, to := range es {
			rev[to] = append(rev[to], int32(q))
		}
	}
	var stack []int32
	for q, f := range n.final {
		if f {
			co[q] = true
			stack = append(stack, int32(q))
		}
	}
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range rev[q] {
			if !co[p] {
				co[p] = true
				stack = append(stack, p)
			}
		}
	}
	return co
}
