package automata

import "testing"

// TestCoReachable builds an automaton with a live spine, an ε-bridge and
// a dead branch, and checks the co-accessibility classification.
func TestCoReachable(t *testing.T) {
	n := NewNFA[rune]()
	n.AddStates(6)
	n.SetStart(0)
	n.AddTransition(0, 'a', 1) // live: 1 → 2(final) via ε
	n.AddEps(1, 2)
	n.SetFinal(2, true)
	n.AddTransition(0, 'a', 3) // dead branch: 3 → 4, no acceptance below
	n.AddTransition(3, 'c', 4)
	n.AddTransition(5, 'b', 2) // live but unreachable from the start
	co := CoReachable(n)
	want := []bool{true, true, true, false, false, true}
	for q, w := range want {
		if co[q] != w {
			t.Errorf("CoReachable[%d] = %v, want %v", q, co[q], w)
		}
	}
}

// TestCoReachableEmpty covers the empty-language automaton: nothing is
// co-reachable.
func TestCoReachableEmpty(t *testing.T) {
	n := NewNFA[rune]()
	n.AddStates(2)
	n.SetStart(0)
	n.AddTransition(0, 'a', 1)
	for q, c := range CoReachable(n) {
		if c {
			t.Errorf("CoReachable[%d] = true in empty-language automaton", q)
		}
	}
}
