// Package automata provides nondeterministic and deterministic finite
// automata over arbitrary comparable symbol types, together with the
// constructions the ECRPQ paper relies on: Thompson construction from
// regular expressions, products, boolean operations via determinization,
// minimization, emptiness and witness extraction, symbol mapping
// (projection/cylindrification of synchronous multi-tape automata), and
// analysis of unary automata as ultimately periodic length sets
// (Chrobak 1986 / To 2009, used by Claim 6.7.2 of the paper).
//
// Automata over tuple alphabets (Σ⊥)ⁿ — the paper's letter-to-letter
// synchronous automata recognizing n-ary regular relations — instantiate
// S = string with each symbol a string of n runes; see package relations.
package automata

import (
	"fmt"
	"sort"

	"repro/internal/regex"
)

// NFA is a nondeterministic finite automaton with ε-transitions over
// symbols of type S. States are dense integers 0..NumStates()-1. Multiple
// start states are allowed, which keeps graph-database-as-automaton views
// (Section 2 of the paper) natural.
type NFA[S comparable] struct {
	trans []map[S][]int // trans[q][a] = successor states
	eps   [][]int       // eps[q] = ε-successor states
	start []int
	final []bool
}

// NewNFA returns an empty automaton with no states.
func NewNFA[S comparable]() *NFA[S] { return &NFA[S]{} }

// NumStates returns the number of states.
func (n *NFA[S]) NumStates() int { return len(n.trans) }

// AddState adds a fresh state and returns its id.
func (n *NFA[S]) AddState() int {
	n.trans = append(n.trans, nil)
	n.eps = append(n.eps, nil)
	n.final = append(n.final, false)
	return len(n.trans) - 1
}

// AddStates adds k fresh states, returning the id of the first.
func (n *NFA[S]) AddStates(k int) int {
	first := n.NumStates()
	for i := 0; i < k; i++ {
		n.AddState()
	}
	return first
}

// AddTransition adds the transition from --a--> to.
func (n *NFA[S]) AddTransition(from int, a S, to int) {
	if n.trans[from] == nil {
		n.trans[from] = make(map[S][]int)
	}
	n.trans[from][a] = append(n.trans[from][a], to)
}

// AddEps adds an ε-transition from → to.
func (n *NFA[S]) AddEps(from, to int) { n.eps[from] = append(n.eps[from], to) }

// SetStart marks q as a start state.
func (n *NFA[S]) SetStart(q int) { n.start = append(n.start, q) }

// ClearStart removes all start states (useful when re-rooting a graph
// automaton at a particular node).
func (n *NFA[S]) ClearStart() { n.start = n.start[:0] }

// SetFinal marks or unmarks q as accepting.
func (n *NFA[S]) SetFinal(q int, accepting bool) { n.final[q] = accepting }

// ClearFinal unmarks all accepting states.
func (n *NFA[S]) ClearFinal() {
	for i := range n.final {
		n.final[i] = false
	}
}

// Start returns the start states (shared slice; do not modify).
func (n *NFA[S]) Start() []int { return n.start }

// IsFinal reports whether q is accepting.
func (n *NFA[S]) IsFinal(q int) bool { return n.final[q] }

// FinalStates returns the accepting states in increasing order.
func (n *NFA[S]) FinalStates() []int {
	var out []int
	for q, f := range n.final {
		if f {
			out = append(out, q)
		}
	}
	return out
}

// Successors returns the states reachable from q by symbol a (shared
// slice; do not modify).
func (n *NFA[S]) Successors(q int, a S) []int { return n.trans[q][a] }

// EpsSuccessors returns the ε-successors of q (shared slice).
func (n *NFA[S]) EpsSuccessors(q int) []int { return n.eps[q] }

// TransitionsFrom calls f for every labeled transition leaving q.
func (n *NFA[S]) TransitionsFrom(q int, f func(a S, to int)) {
	for a, tos := range n.trans[q] {
		for _, to := range tos {
			f(a, to)
		}
	}
}

// EachTransition calls f for every labeled transition in the automaton.
func (n *NFA[S]) EachTransition(f func(from int, a S, to int)) {
	for q := range n.trans {
		for a, tos := range n.trans[q] {
			for _, to := range tos {
				f(q, a, to)
			}
		}
	}
}

// NumTransitions returns the number of labeled (non-ε) transitions.
func (n *NFA[S]) NumTransitions() int {
	c := 0
	n.EachTransition(func(int, S, int) { c++ })
	return c
}

// Alphabet returns the set of symbols used on transitions, deduplicated,
// in unspecified order.
func (n *NFA[S]) Alphabet() []S {
	seen := map[S]bool{}
	var out []S
	for q := range n.trans {
		for a := range n.trans[q] {
			if !seen[a] {
				seen[a] = true
				out = append(out, a)
			}
		}
	}
	return out
}

// EpsClosure expands the state set to its ε-closure. The input slice is
// not modified; the result is sorted and deduplicated.
func (n *NFA[S]) EpsClosure(states []int) []int {
	seen := make(map[int]bool, len(states))
	stack := append([]int(nil), states...)
	for _, q := range stack {
		seen[q] = true
	}
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, r := range n.eps[q] {
			if !seen[r] {
				seen[r] = true
				stack = append(stack, r)
			}
		}
	}
	return sortedKeys(seen)
}

// Step returns the ε-closed successor set of the ε-closed set states under
// symbol a.
func (n *NFA[S]) Step(states []int, a S) []int {
	seen := map[int]bool{}
	for _, q := range states {
		for _, r := range n.trans[q][a] {
			seen[r] = true
		}
	}
	return n.EpsClosure(sortedKeys(seen))
}

// Accepts reports whether the automaton accepts the word w.
func (n *NFA[S]) Accepts(w []S) bool {
	cur := n.EpsClosure(n.start)
	for _, a := range w {
		if len(cur) == 0 {
			return false
		}
		cur = n.Step(cur, a)
	}
	for _, q := range cur {
		if n.final[q] {
			return true
		}
	}
	return false
}

// containsFinal reports whether any state in the sorted set is accepting.
func (n *NFA[S]) containsFinal(states []int) bool {
	for _, q := range states {
		if n.final[q] {
			return true
		}
	}
	return false
}

// IsEmpty reports whether the accepted language is empty.
func (n *NFA[S]) IsEmpty() bool {
	_, ok := n.ShortestAccepted()
	return !ok
}

// ShortestAccepted returns a shortest accepted word, or ok=false if the
// language is empty. Ties are broken arbitrarily but deterministically for
// a fixed automaton. ε-transitions contribute no symbols, so the search is
// a 0-1 BFS: ε-successors are expanded at the current distance before any
// symbol transition is taken.
func (n *NFA[S]) ShortestAccepted() ([]S, bool) {
	type pred struct {
		state int
		sym   S
		has   bool // true if the edge into this state consumed sym
	}
	preds := make([]pred, n.NumStates())
	visited := make([]bool, n.NumStates())
	// Deque for 0-1 BFS: ε edges pushed to the front, symbol edges to the
	// back. Implemented as two stacks per level: simpler here, expand the
	// ε-closure of each newly visited state eagerly (all at the same word
	// length), then process symbol edges FIFO.
	var queue []int
	var addClosed func(q int, p pred)
	addClosed = func(q int, p pred) {
		if visited[q] {
			return
		}
		visited[q] = true
		preds[q] = p
		queue = append(queue, q)
		for _, r := range n.eps[q] {
			addClosed(r, pred{state: q, has: false})
		}
	}
	for _, q := range n.start {
		addClosed(q, pred{state: -1, has: false})
	}
	for head := 0; head < len(queue); head++ {
		q := queue[head]
		if n.final[q] {
			var rev []S
			for cur := q; cur != -1; {
				p := preds[cur]
				if p.has {
					rev = append(rev, p.sym)
				}
				cur = p.state
			}
			for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
				rev[i], rev[j] = rev[j], rev[i]
			}
			return rev, true
		}
		for a, tos := range n.trans[q] {
			for _, to := range tos {
				addClosed(to, pred{state: q, sym: a, has: true})
			}
		}
	}
	return nil, false
}

// EnumerateAccepted returns up to limit accepted words of length at most
// maxLen, in order of nondecreasing length. It is a breadth-first search
// over subset states and runs in time proportional to the number of
// distinct prefixes explored.
func (n *NFA[S]) EnumerateAccepted(limit, maxLen int) [][]S {
	type item struct {
		states []int
		word   []S
	}
	var out [][]S
	cur := []item{{states: n.EpsClosure(n.start)}}
	if n.containsFinal(cur[0].states) {
		out = append(out, []S{})
	}
	// Collect alphabet once.
	alpha := n.Alphabet()
	for depth := 0; depth < maxLen && len(out) < limit && len(cur) > 0; depth++ {
		// Deduplicate frontier by state set to avoid exponential blowup of
		// identical subsets with different words: we must NOT dedupe,
		// because different words matter. Instead we cap the frontier.
		var next []item
		for _, it := range cur {
			for _, a := range alpha {
				ns := n.Step(it.states, a)
				if len(ns) == 0 {
					continue
				}
				w := append(append([]S(nil), it.word...), a)
				next = append(next, item{states: ns, word: w})
				if n.containsFinal(ns) {
					out = append(out, w)
					if len(out) >= limit {
						return out
					}
				}
			}
		}
		cur = next
	}
	return out
}

// Clone returns a deep copy.
func (n *NFA[S]) Clone() *NFA[S] {
	m := NewNFA[S]()
	m.AddStates(n.NumStates())
	n.EachTransition(func(from int, a S, to int) { m.AddTransition(from, a, to) })
	for q, es := range n.eps {
		for _, r := range es {
			m.AddEps(q, r)
		}
	}
	m.start = append([]int(nil), n.start...)
	copy(m.final, n.final)
	return m
}

// String renders a compact description, useful in test failures.
func (n *NFA[S]) String() string {
	return fmt.Sprintf("NFA{states:%d, trans:%d, start:%v, final:%v}",
		n.NumStates(), n.NumTransitions(), n.start, n.FinalStates())
}

func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// FromRegex builds an NFA for the regular expression via the Thompson
// construction. The automaton has a single start state and a single final
// state.
func FromRegex[S comparable](node *regex.Node[S]) *NFA[S] {
	n := NewNFA[S]()
	s, f := thompson(n, node)
	n.SetStart(s)
	n.SetFinal(f, true)
	return n
}

// thompson adds the fragment for node and returns its (start, final) pair.
func thompson[S comparable](n *NFA[S], node *regex.Node[S]) (int, int) {
	s := n.AddState()
	f := n.AddState()
	switch node.Op {
	case regex.OpEmpty:
		// no transitions: f unreachable
	case regex.OpEps:
		n.AddEps(s, f)
	case regex.OpSym:
		n.AddTransition(s, node.Sym, f)
	case regex.OpConcat:
		ls, lf := thompson(n, node.Left)
		rs, rf := thompson(n, node.Right)
		n.AddEps(s, ls)
		n.AddEps(lf, rs)
		n.AddEps(rf, f)
	case regex.OpAlt:
		ls, lf := thompson(n, node.Left)
		rs, rf := thompson(n, node.Right)
		n.AddEps(s, ls)
		n.AddEps(s, rs)
		n.AddEps(lf, f)
		n.AddEps(rf, f)
	case regex.OpStar:
		is, ifin := thompson(n, node.Left)
		n.AddEps(s, f)
		n.AddEps(s, is)
		n.AddEps(ifin, is)
		n.AddEps(ifin, f)
	}
	return s, f
}
