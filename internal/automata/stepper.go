package automata

import "sort"

// Stepper performs repeated subset-construction steps over one NFA with
// reusable scratch space. NFA.Step allocates a visited map and result
// slice per call; on hot paths (the joint relation stepper of package
// relations, determinization loops) that dominates the profile. A
// Stepper amortizes: one boolean mark array sized to the automaton and
// one growable buffer serve every call.
//
// A Stepper is not safe for concurrent use; create one per goroutine.
type Stepper[S comparable] struct {
	n    *NFA[S]
	mark []bool
	buf  []int
}

// NewStepper returns a stepper for n. The automaton must not gain states
// after the stepper is created.
func NewStepper[S comparable](n *NFA[S]) *Stepper[S] {
	return &Stepper[S]{n: n, mark: make([]bool, n.NumStates())}
}

// Step returns the ε-closed successor set of the ε-closed state set
// under symbol a, sorted and deduplicated. The returned slice aliases
// the stepper's scratch buffer and is only valid until the next Step
// call; copy it (or intern it) to retain.
func (st *Stepper[S]) Step(states []int, a S) []int {
	buf := st.buf[:0]
	for _, q := range states {
		for _, r := range st.n.trans[q][a] {
			if !st.mark[r] {
				st.mark[r] = true
				buf = append(buf, r)
			}
		}
	}
	// ε-closure: buf doubles as the work stack; newly reached states are
	// appended and processed in turn.
	for i := 0; i < len(buf); i++ {
		for _, r := range st.n.eps[buf[i]] {
			if !st.mark[r] {
				st.mark[r] = true
				buf = append(buf, r)
			}
		}
	}
	for _, q := range buf {
		st.mark[q] = false
	}
	sort.Ints(buf)
	st.buf = buf
	return buf
}

// ContainsFinal reports whether any state in the set is accepting.
func (st *Stepper[S]) ContainsFinal(states []int) bool {
	for _, q := range states {
		if st.n.final[q] {
			return true
		}
	}
	return false
}
