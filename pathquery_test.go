package pathquery

import (
	"testing"
)

// TestFacadeEndToEnd exercises the public API exactly as the README's
// quickstart does.
func TestFacadeEndToEnd(t *testing.T) {
	g := NewGraph()
	var ns []Node
	for i := 0; i <= 4; i++ {
		ns = append(ns, g.AddNode(""))
	}
	g.AddEdge(ns[0], 'a', ns[1])
	g.AddEdge(ns[1], 'a', ns[2])
	g.AddEdge(ns[2], 'b', ns[3])
	g.AddEdge(ns[3], 'b', ns[4])

	env := Env{Sigma: []rune{'a', 'b'}}
	q, err := ParseQuery("Ans(x, y) <- (x,p1,z), (z,p2,y), a+(p1), b+(p2), el(p1,p2)", env)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Eval(q, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 2 {
		t.Fatalf("want 2 answers (a²b² and a¹b¹), got %d", len(res.Answers))
	}

	ok, err := Member(q, g, []Node{ns[0], ns[4]}, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("(v0,v4) is an answer")
	}

	qp, err := ParseQuery("Ans(x, y, p1) <- (x,p1,y), a+(p1)", env)
	if err != nil {
		t.Fatal(err)
	}
	pa, err := BuildPathAutomaton(qp, g, []Node{ns[0], ns[2]}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tuples := pa.Enumerate(5, 10)
	if len(tuples) != 1 || tuples[0][0].LabelString() != "aa" {
		t.Errorf("path enumeration = %v", tuples)
	}
}

func TestFacadeBuilderAndRelations(t *testing.T) {
	sigma := []rune{'a', 'b'}
	g := NewGraph()
	u := g.AddNode("u")
	v := g.AddNode("v")
	w := g.AddNode("w")
	g.AddEdge(u, 'a', v)
	g.AddEdge(u, 'b', w)

	q, err := NewQuery().
		Path("x", "p1", "y1").
		Path("x", "p2", "y2").
		Rel(EqualLength(sigma), "p1", "p2").
		Rel(EditDistance(sigma, 1), "p1", "p2").
		HeadNodes("y1", "y2").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Eval(q, g, Options{Bind: map[NodeVar]Node{"x": u}})
	if err != nil {
		t.Fatal(err)
	}
	// Pairs of equal-length within-distance-1 paths from u: includes
	// (v,w) via "a"/"b".
	found := false
	for _, a := range res.Answers {
		if a.Nodes[0] == v && a.Nodes[1] == w {
			found = true
		}
	}
	if !found {
		t.Error("(v,w) should be answered via a/b at edit distance 1")
	}
}

func TestFacadeTupleRegex(t *testing.T) {
	r, err := TupleRegex("shift", "(<a,a>|<a,b>|<b,a>|<b,b>)*(<_,a>|<_,b>)", 2)
	if err != nil {
		t.Fatal(err)
	}
	if !r.ContainsStrings("a", "ab") || r.ContainsStrings("a", "a") {
		t.Error("|s'| = |s|+1 relation wrong")
	}
	if _, err := TupleRegex("bad", "<a>", 2); err == nil {
		t.Error("arity mismatch should error")
	}
	l, err := LangRegex("a+")
	if err != nil {
		t.Fatal(err)
	}
	if !l.ContainsStrings("aa") {
		t.Error("LangRegex wrong")
	}
	if _, err := LangRegex("(("); err == nil {
		t.Error("bad regex should error")
	}
}
