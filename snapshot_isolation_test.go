package pathquery

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
)

// This file holds the snapshot-isolation property test of the
// epoch-versioned store: a pinned snapshot's Eval and Stream answers
// (including witness lengths) must be byte-identical before, during,
// and after a concurrent AddEdge storm. Run it under -race — the CI
// race step covers this package — to also prove the absence of data
// races between the storm and the evaluations.

// renderEval canonicalizes an Eval result: sorted answers with witness
// lengths (Eval keeps shortest witnesses, so lengths are deterministic).
func renderEval(t *testing.T, p *Prepared, s *Snapshot, opts Options) string {
	t.Helper()
	res, err := p.EvalSnapshot(context.Background(), s, opts)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, a := range res.Answers {
		fmt.Fprintf(&b, "%v /", a.Nodes)
		for _, pth := range a.Paths {
			fmt.Fprintf(&b, " %d", pth.Len())
		}
		b.WriteString("\n")
	}
	return b.String()
}

// renderStream canonicalizes a Stream run over a pinned snapshot: the
// sorted node tuples with the witness lengths the deterministic BFS
// discovery produces.
func renderStream(t *testing.T, p *Prepared, s *Snapshot, opts Options) string {
	t.Helper()
	var rows []string
	for a, err := range p.StreamSnapshot(context.Background(), s, StreamOptions{Options: opts}) {
		if err != nil {
			t.Fatal(err)
		}
		row := fmt.Sprintf("%v /", a.Nodes)
		for _, pth := range a.Paths {
			row += fmt.Sprintf(" %d", pth.Len())
		}
		rows = append(rows, row)
	}
	sort.Strings(rows)
	return strings.Join(rows, "\n")
}

// TestSnapshotIsolationUnderWriteStorm pins a snapshot, records its
// Eval and Stream renderings, then re-renders both repeatedly while
// writer goroutines storm AddEdge/AddNode — every rendering must be
// byte-identical to the pre-storm one, and again after the storm. A
// fresh snapshot taken after the storm must see the writes.
func TestSnapshotIsolationUnderWriteStorm(t *testing.T) {
	sigma := []rune{'a', 'b'}
	r := rand.New(rand.NewSource(77))
	g := NewGraph()
	const n = 12
	for i := 0; i < n; i++ {
		g.AddNode("")
	}
	// A guaranteed a³b³ chain from node 0, plus random noise edges.
	chain := []rune("aaabbb")
	for i, a := range chain {
		g.AddEdge(Node(i), a, Node(i+1))
	}
	for e := 0; e < 24; e++ {
		g.AddEdge(Node(r.Intn(n)), sigma[r.Intn(2)], Node(r.Intn(n)))
	}

	q, err := ParseQuery("Ans(x, y, p1, p2) <- (x,p1,z), (z,p2,y), a+(p1), b+(p2), el(p1,p2)", Env{Sigma: sigma})
	if err != nil {
		t.Fatal(err)
	}
	p, err := Prepare(q, Env{Sigma: sigma})
	if err != nil {
		t.Fatal(err)
	}
	// x is bound: the serving-shape point lookup, cheap enough to rerun
	// dozens of times mid-storm.
	opts := Options{MaxProductStates: 50_000_000, Bind: map[NodeVar]Node{"x": 0}}

	pinned := g.Snapshot()
	wantEval := renderEval(t, p, pinned, opts)
	wantStream := renderStream(t, p, pinned, opts)
	if wantEval == "" {
		t.Fatal("empty pre-storm answer set; the test would be vacuous")
	}

	// Writer storm: fresh edges (and the occasional node) in a loop,
	// enough traffic to force compactions mid-storm.
	stop := make(chan struct{})
	var writers sync.WaitGroup
	for w := 0; w < 2; w++ {
		writers.Add(1)
		go func(seed int64) {
			defer writers.Done()
			wr := rand.New(rand.NewSource(seed))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				g.AddEdge(Node(wr.Intn(n)), sigma[wr.Intn(2)], Node(wr.Intn(n)))
				if i%50 == 0 {
					g.AddNode("")
				}
			}
		}(int64(100 + w))
	}

	var readers sync.WaitGroup
	for rd := 0; rd < 2; rd++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 5; i++ {
				if got := renderEval(t, p, pinned, opts); got != wantEval {
					t.Errorf("Eval answers drifted mid-storm:\n got:\n%s\nwant:\n%s", got, wantEval)
					return
				}
				if got := renderStream(t, p, pinned, opts); got != wantStream {
					t.Errorf("Stream answers drifted mid-storm:\n got:\n%s\nwant:\n%s", got, wantStream)
					return
				}
			}
		}()
	}
	readers.Wait()
	close(stop)
	writers.Wait()

	// After the storm: the pinned snapshot still answers identically...
	if got := renderEval(t, p, pinned, opts); got != wantEval {
		t.Fatalf("Eval answers drifted after the storm:\n got:\n%s\nwant:\n%s", got, wantEval)
	}
	if got := renderStream(t, p, pinned, opts); got != wantStream {
		t.Fatalf("Stream answers drifted after the storm:\n got:\n%s\nwant:\n%s", got, wantStream)
	}
	// ...while a fresh snapshot reflects the writes.
	fresh := g.Snapshot()
	if fresh.Epoch() <= pinned.Epoch() || fresh.NumEdges() <= pinned.NumEdges() {
		t.Fatalf("storm left no trace: pinned epoch %d/%d edges, fresh %d/%d",
			pinned.Epoch(), pinned.NumEdges(), fresh.Epoch(), fresh.NumEdges())
	}
	if _, err := p.EvalSnapshot(context.Background(), fresh, opts); err != nil {
		t.Fatalf("post-storm evaluation: %v", err)
	}
}

// TestEvalIsTakeCurrentSnapshotShim: Prepared.Eval over the live graph
// equals EvalSnapshot over an explicitly taken snapshot at the same
// epoch, and sees writes that a previously pinned snapshot does not.
func TestEvalIsTakeCurrentSnapshotShim(t *testing.T) {
	sigma := []rune{'a', 'b'}
	g := NewGraph()
	u, v, w := g.AddNode("u"), g.AddNode("v"), g.AddNode("w")
	g.AddEdge(u, 'a', v)
	q, err := ParseQuery("Ans(x, y) <- (x,p,y), a+(p)", Env{Sigma: sigma})
	if err != nil {
		t.Fatal(err)
	}
	p, err := Prepare(q, Env{Sigma: sigma})
	if err != nil {
		t.Fatal(err)
	}
	pinned := g.Snapshot()
	before, err := p.Eval(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	g.AddEdge(v, 'a', w)
	after, err := p.Eval(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Answers) != len(before.Answers)+2 {
		t.Fatalf("live Eval answers: %d before, %d after (want +2: v→w and u→w)",
			len(before.Answers), len(after.Answers))
	}
	onPinned, err := p.EvalSnapshot(context.Background(), pinned, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(onPinned.Answers) != len(before.Answers) {
		t.Fatalf("pinned snapshot saw the write: %d answers, want %d",
			len(onPinned.Answers), len(before.Answers))
	}
}
