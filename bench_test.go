// Benchmarks regenerating the paper's evaluation (Figure 1 and the
// Section 3–8 constructions), one benchmark per experiment of DESIGN.md;
// run with `go test -bench=. -benchmem`. The wall-clock *shapes* across
// the sub-benchmarks are the reproduction target; see EXPERIMENTS.md.
package pathquery

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/ecrpq"
	"repro/internal/graph"
	"repro/internal/ilp"
	"repro/internal/lenabs"
	"repro/internal/linconstr"
	"repro/internal/neg"
	"repro/internal/plan"
	"repro/internal/relations"
	"repro/internal/workload"
)

var benchSigma = []rune{'a', 'b'}

func benchEnv() ecrpq.Env { return ecrpq.Env{Sigma: benchSigma} }

// E1 — Figure 1(a), CRPQ data complexity: fixed query, growing graph.
func BenchmarkFig1a_CRPQ_Data(b *testing.B) {
	q := ecrpq.MustParse("Ans(x,y) <- (x,p,y), (a|b)*a(p)", benchEnv())
	for _, n := range []int{128, 512, 2048} {
		g := workload.Random(rand.New(rand.NewSource(1)), n, 2.0, benchSigma)
		bind := map[ecrpq.NodeVar]graph.Node{"x": 0, "y": graph.Node(n - 1)}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ecrpq.Eval(q, g, ecrpq.Options{Bind: bind}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E2 — Figure 1(a), ECRPQ data complexity: aⁿbⁿ query, growing graph.
func BenchmarkFig1a_ECRPQ_Data(b *testing.B) {
	q := ecrpq.MustParse("Ans(x,y) <- (x,p1,z), (z,p2,y), a+(p1), b+(p2), el(p1,p2)", benchEnv())
	for _, n := range []int{8, 16, 32} {
		g := workload.Random(rand.New(rand.NewSource(2)), n, 1.5, benchSigma)
		bind := map[ecrpq.NodeVar]graph.Node{"x": 0, "y": graph.Node(n - 1)}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ecrpq.Eval(q, g, ecrpq.Options{Bind: bind, MaxProductStates: 50_000_000}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E3 — Figure 1(a), CRPQ combined complexity: cyclic query, growing m.
func BenchmarkFig1a_CRPQ_Combined(b *testing.B) {
	g := workload.Random(rand.New(rand.NewSource(3)), 24, 2.0, benchSigma)
	for _, m := range []int{2, 4, 6} {
		q, err := workload.CycleCRPQ(m, []string{"a*", "b*", "(a|b)a*"})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ecrpq.Eval(q, g, ecrpq.Options{Join: ecrpq.JoinBacktrack}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E4/E6 — Figure 1(a), ECRPQ combined complexity on the Theorem 6.3 REI
// family (the queries are acyclic, covering the acyclic-ECRPQ cell too).
func BenchmarkFig1a_ECRPQ_Combined(b *testing.B) {
	g := workload.REIGraph(benchSigma)
	exprsAll := []string{"(a|b)*a", "a+|b+", "(ab|ba)*(a|b)?"}
	for _, m := range []int{1, 2, 3} {
		q, err := workload.REIQuery(exprsAll[:m], benchSigma)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ecrpq.Eval(q, g, ecrpq.Options{MaxProductStates: 50_000_000}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E5 — Figure 1(a), acyclic CRPQ combined complexity (Theorem 6.5).
func BenchmarkFig1a_AcyclicCRPQ(b *testing.B) {
	g := workload.Random(rand.New(rand.NewSource(5)), 32, 2.0, benchSigma)
	for _, m := range []int{2, 8, 16} {
		q, err := workload.ChainCRPQ(m, []string{"a*", "b*"})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ecrpq.Eval(q, g, ecrpq.Options{Join: ecrpq.JoinYannakakis}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E7 — Figure 1(a), Q_len (Theorem 6.7): the modulus family with both
// endpoints bound, mirroring the benchtables crossover experiment (the
// concrete engine's cost follows the lcm, Q_len's the sum of periods).
func BenchmarkFig1a_Qlen(b *testing.B) {
	g := workload.REIGraph(benchSigma)
	primes := []int{2, 3, 5}
	for m := 1; m <= 3; m++ {
		qb := ecrpq.NewBuilder()
		bind := map[ecrpq.NodeVar]graph.Node{}
		exprs := []string{"a+"}
		for i := 0; i < m; i++ {
			pow := ""
			for j := 0; j < primes[i]; j++ {
				pow += "(a|b)"
			}
			exprs = append(exprs, "("+pow+")*")
		}
		for i, src := range exprs {
			qb.Path(fmt.Sprintf("x%d", i), fmt.Sprintf("p%d", i), fmt.Sprintf("y%d", i))
			qb.Lang(fmt.Sprintf("p%d", i), src)
			bind[ecrpq.NodeVar(fmt.Sprintf("x%d", i))] = 0
			bind[ecrpq.NodeVar(fmt.Sprintf("y%d", i))] = 0
			if i > 0 {
				qb.Rel(relations.EqualLength(benchSigma), fmt.Sprintf("p%d", i-1), fmt.Sprintf("p%d", i))
			}
		}
		q, err := qb.Build()
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := lenabs.EvalLen(q, g, lenabs.Options{Bind: bind, VarBound: 4096, MaxNodes: 20000}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E8 — Figure 1(b), CRPQ with repeated path variables (Prop 6.8).
func BenchmarkFig1b_Repetition(b *testing.B) {
	g := workload.REIGraph(benchSigma)
	primes := []int{2, 3, 5, 7}
	for m := 1; m <= 3; m++ {
		exprs := []string{"a+"}
		for i := 0; i < m; i++ {
			pow := ""
			for j := 0; j < primes[i]; j++ {
				pow += "(a|b)"
			}
			exprs = append(exprs, "("+pow+")*")
		}
		q, err := workload.REIRepetitionQuery(exprs, benchSigma)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ecrpq.Eval(q, g, ecrpq.Options{MaxProductStates: 50_000_000}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E9 — Figure 1(b), CRPQ¬ data complexity.
func BenchmarkFig1b_CRPQNeg(b *testing.B) {
	f := neg.ExistsNode{X: "x", F: neg.ExistsNode{X: "y", F: neg.And{
		F: neg.Not{F: neg.ExistsPath{P: "p", F: neg.And{F: neg.Edge{X: "x", P: "p", Y: "y"}, G: neg.Lang("a+", "p")}}},
		G: neg.ExistsPath{P: "q", F: neg.And{F: neg.Edge{X: "x", P: "q", Y: "y"}, G: neg.Lang("b+", "q")}},
	}}}
	for _, n := range []int{3, 6, 12} {
		g := workload.Random(rand.New(rand.NewSource(9)), n, 1.5, benchSigma)
		e := neg.NewEvaluator(g)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := e.Holds(f); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E10 — Figure 1(b), ECRPQ¬ negation-depth growth (Theorem 8.2).
func BenchmarkFig1b_ECRPQNeg(b *testing.B) {
	g := workload.REIGraph(benchSigma)
	e := neg.NewEvaluator(g)
	el := relations.EqualLength(benchSigma)
	for depth := 1; depth <= 2; depth++ {
		f := negDepthFormula(el, depth)
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := e.Holds(f); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func negDepthFormula(el *relations.Relation, depth int) neg.Formula {
	var build func(d int, outer ecrpq.PathVar) neg.Formula
	build = func(d int, outer ecrpq.PathVar) neg.Formula {
		inner := ecrpq.PathVar(fmt.Sprintf("q%d", d))
		base := neg.And{
			F: neg.ExistsNode{X: ecrpq.NodeVar(fmt.Sprintf("u%d", d)), F: neg.ExistsNode{X: ecrpq.NodeVar(fmt.Sprintf("w%d", d)), F: neg.Edge{X: ecrpq.NodeVar(fmt.Sprintf("u%d", d)), P: inner, Y: ecrpq.NodeVar(fmt.Sprintf("w%d", d))}}},
			G: neg.Rel{R: el, Args: []ecrpq.PathVar{outer, inner}},
		}
		if d == 0 {
			return neg.ExistsPath{P: inner, F: base}
		}
		return neg.Not{F: neg.ExistsPath{P: inner, F: neg.And{F: base.F, G: neg.Not{F: build(d-1, inner)}}}}
	}
	return neg.ExistsNode{X: "x", F: neg.ExistsNode{X: "y", F: neg.ExistsPath{P: "p",
		F: neg.And{F: neg.Edge{X: "x", P: "p", Y: "y"}, G: build(depth-1, "p")}}}}
}

// E11 — Figure 1(b), CRPQ with linear constraints (Theorem 8.5).
func BenchmarkFig1b_LinConstraints(b *testing.B) {
	airlines := []rune{'s', 'q'}
	q := ecrpq.MustParse("Ans() <- (x,p,y), (s|q)+(p)", ecrpq.Env{Sigma: airlines})
	cons := []linconstr.Constraint{{
		Terms: []linconstr.Term{{Path: "p", Label: 's', Coef: 1}, {Path: "p", Label: 'q', Coef: -4}},
		Rel:   ilp.GE, RHS: 0,
	}}
	for _, n := range []int{6, 12, 24} {
		g := workload.FlightNetwork(rand.New(rand.NewSource(11)), n, airlines)
		bind := map[ecrpq.NodeVar]graph.Node{"x": 0, "y": graph.Node(n - 1)}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := linconstr.Feasible(q, cons, g, airlines, bind, linconstr.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E12 — Proposition 3.2: the aⁿbⁿ ECRPQ on string graphs.
func BenchmarkProp32_Separation(b *testing.B) {
	q := ecrpq.MustParse("Ans(x,y) <- (x,p1,z), (z,p2,y), a+(p1), b+(p2), el(p1,p2)", benchEnv())
	for _, n := range []int{8, 16, 32} {
		s := ""
		for i := 0; i < n/2; i++ {
			s += "a"
		}
		for i := 0; i < n/2; i++ {
			s += "b"
		}
		g, _, _ := workload.StringGraph(s)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ecrpq.Eval(q, g, ecrpq.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E13 — Section 4: edit-distance relation construction and evaluation.
func BenchmarkSec4_EditDistance(b *testing.B) {
	for _, k := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("construct/k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				relations.EditDistance(benchSigma, k)
			}
		})
		rel := relations.EditDistance(benchSigma, k)
		x, y := []rune("abbabab"), []rune("ababbab")
		b.Run(fmt.Sprintf("contains/k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rel.Contains(x, y)
			}
		})
	}
}

// E14 — Proposition 5.2: answer-automaton construction vs graph size.
func BenchmarkProp52_AnswerAutomaton(b *testing.B) {
	q := ecrpq.MustParse("Ans(x, y, p1, p2) <- (x,p1,z), (z,p2,y), a+(p1), b+(p2), el(p1,p2)", benchEnv())
	for _, n := range []int{8, 16, 32} {
		s := ""
		for i := 0; i < n/2; i++ {
			s += "a"
		}
		for i := 0; i < n/2; i++ {
			s += "b"
		}
		g, from, to := workload.StringGraph(s)
		b.Run(fmt.Sprintf("E=%d", g.NumEdges()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ecrpq.BuildPathAutomaton(q, g, []graph.Node{from, to}, ecrpq.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E15 — ablation: component decomposition vs monolithic product.
func BenchmarkAblation_Decomposition(b *testing.B) {
	q := ecrpq.MustParse("Ans(x,y) <- (x,p1,z), (z,p2,y), a+(p1), b+(p2)", benchEnv())
	g := workload.Random(rand.New(rand.NewSource(15)), 24, 1.5, benchSigma)
	bind := map[ecrpq.NodeVar]graph.Node{"x": 0}
	b.Run("decomposed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ecrpq.Eval(q, g, ecrpq.Options{Bind: bind}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("monolithic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ecrpq.Eval(q, g, ecrpq.Options{Bind: bind, NoDecompose: true, MaxProductStates: 50_000_000}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// E17 — time-to-first-answer: the E2 graphs with unbound endpoints,
// prepared once; Stream/Limit=1 vs the fully materializing Eval on the
// same plan. The streaming executor stops the product BFS at the first
// answer, so the gap widens with graph size.
func BenchmarkFig1a_ECRPQ_TTFA(b *testing.B) {
	q := ecrpq.MustParse("Ans(x,y) <- (x,p1,z), (z,p2,y), a+(p1), b+(p2), el(p1,p2)", benchEnv())
	for _, n := range []int{8, 16, 32} {
		g := workload.Random(rand.New(rand.NewSource(2)), n, 1.5, benchSigma)
		p, err := plan.Compile(q, benchEnv())
		if err != nil {
			b.Fatal(err)
		}
		opts := ecrpq.Options{MaxProductStates: 50_000_000}
		b.Run(fmt.Sprintf("stream_limit1/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				got := false
				for _, err := range p.Stream(context.Background(), g, ecrpq.StreamOptions{Options: opts, Limit: 1}) {
					if err != nil {
						b.Fatal(err)
					}
					got = true
				}
				if !got {
					b.Fatal("no answer streamed")
				}
			}
		})
		b.Run(fmt.Sprintf("eval_full/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := p.Eval(context.Background(), g, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E18 — prepared reuse: one shared Plan evaluated concurrently from
// GOMAXPROCS goroutines (the production serving shape) vs sequential.
func BenchmarkPreparedConcurrent(b *testing.B) {
	q := ecrpq.MustParse("Ans(x,y) <- (x,p1,z), (z,p2,y), a+(p1), b+(p2), el(p1,p2)", benchEnv())
	g := workload.Random(rand.New(rand.NewSource(2)), 16, 1.5, benchSigma)
	p, err := plan.Compile(q, benchEnv())
	if err != nil {
		b.Fatal(err)
	}
	opts := ecrpq.Options{MaxProductStates: 50_000_000}
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := p.Eval(context.Background(), g, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// E19 — scale: label-rich Zipf-skewed graphs (|Σ| ∈ {8, 32}, n up to
// 256) under selective vs permissive regexes. Selective cases are where
// the label-directed product BFS replaces the (deg+1)^m move
// enumeration with the few live-label edges; permissive cases bound its
// overhead when every label is live. For the exhaustive-enumeration
// ablation on the same cases, run `benchtables -json out.json
// -baseline` and `-compare` it against a non-baseline file.
func BenchmarkScale_LabelRich(b *testing.B) {
	for _, c := range workload.ScaleLabelRichCases() {
		opts := ecrpq.Options{Bind: c.Bind, MaxProductStates: 50_000_000}
		b.Run(c.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ecrpq.Eval(c.Query, c.Graph, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E23 — scale: RDF/Wikidata-scale label spaces (|Σ| = 10⁴, Zipf
// predicate frequencies, range-class queries over ~2500-label bands).
// Each iteration serves one cold query: compile the program from a
// fresh Query value and evaluate it once, bypassing the shared program
// cache — the ad-hoc regime where alphabet size bites. The classes arms
// run the label-class compilation (the per-query partition collapses
// each band to one class id, so both the automaton and the joint
// runner's memo stay |Σ|-independent); the noclasses arms run the
// Options.NoClasses ablation, which expands each band into a per-symbol
// alternation — Θ(|Σ|) automaton construction plus one interned tuple
// symbol per distinct traversed label, every time the query arrives.
// Same answers, same witnesses (see internal/ecrpq/classes_test.go);
// the gap is pure alphabet handling. benchtables records the classes
// arms with `-suite bigalpha` and the ablation with `-suite bigalpha
// -baseline` (BENCH_9 vs BENCH_9_baseline).
func BenchmarkScale_BigAlphabet(b *testing.B) {
	g := workload.BigAlphabetGraph()
	bind := map[ecrpq.NodeVar]graph.Node{"x": 0}
	nQueries := len(workload.BigAlphabetQueries())
	for _, noClasses := range []bool{false, true} {
		mode := "classes"
		if noClasses {
			mode = "noclasses"
		}
		opts := ecrpq.Options{Bind: bind, NoClasses: noClasses, MaxProductStates: 50_000_000}
		for qi := 0; qi < nQueries; qi++ {
			name := workload.BigAlphabetQueries()[qi].Name
			b.Run(fmt.Sprintf("%s/%s", mode, name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					q := workload.BigAlphabetQueries()[qi].Query
					p, err := ecrpq.CompileProgramOptions(q, false, noClasses)
					if err != nil {
						b.Fatal(err)
					}
					if _, err := p.Eval(context.Background(), g, opts); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// E21 — scale: repeated-query serving through the epoch-keyed result
// cache. unchanged_epoch rotates a fixed query mix against a quiet
// ~100k-edge store: with the cache every post-warmup evaluation is a
// hit (one map probe against the (program, epoch, options) key), while
// the uncached ablation pays the full product BFS each time. The serve
// cases interleave the rotation with writes at the Scale_MixedReadWrite
// ratios, so epoch advances exercise the incremental serving layer:
// label-disjoint writes revalidate the cached entry for free, live
// writes re-run the product BFS only for the affected start
// assignments — the end-to-end mixed shape. The serve_noadvance cases
// rerun the same write mix with Options.NoAdvance, the PR-5
// whole-entry-invalidation shape (every epoch advance recomputes).
// benchtables -suite serve records the cached run; -baseline reruns it
// with the cache disabled and -noadvance with the incremental layer
// disabled for `-compare` (BENCH_7 vs BENCH_7_baseline).
func BenchmarkScale_RepeatedServe(b *testing.B) {
	for _, cached := range []bool{true, false} {
		name := "unchanged_epoch/cached"
		if !cached {
			name = "unchanged_epoch/uncached"
		}
		b.Run(name, func(b *testing.B) {
			m := workload.NewMixedServing(20)
			sqs := m.RepeatedServeQueries()
			var cps []*CachedPrepared
			var c *Cache
			if cached {
				c = NewCache(64 << 20)
			}
			for _, sq := range sqs {
				p, err := Prepare(sq.Query, m.Env())
				if err != nil {
					b.Fatal(err)
				}
				cps = append(cps, p.Cached(c))
			}
			ctx := context.Background()
			s := m.Graph.Snapshot()
			for i, sq := range sqs { // warm: caches populated, memos hot
				if _, err := cps[i].EvalSnapshot(ctx, s, Options{Bind: sq.Bind, MaxProductStates: 50_000_000}); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := i % len(sqs)
				opts := Options{Bind: sqs[k].Bind, MaxProductStates: 50_000_000}
				if _, err := cps[k].EvalSnapshot(ctx, m.Graph.Snapshot(), opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	for _, noAdvance := range []bool{false, true} {
		prefix := "serve"
		if noAdvance {
			prefix = "serve_noadvance"
		}
		for _, wp := range workload.MixedWritePcts {
			b.Run(fmt.Sprintf("%s/write_pct=%d", prefix, wp), func(b *testing.B) {
				m := workload.NewMixedServing(20)
				sqs := m.RepeatedServeQueries()
				c := NewCache(64 << 20)
				var cps []*CachedPrepared
				for _, sq := range sqs {
					p, err := Prepare(sq.Query, m.Env())
					if err != nil {
						b.Fatal(err)
					}
					cps = append(cps, p.Cached(c))
				}
				ctx := context.Background()
				m.Graph.Snapshot() // warm
				period := 100 / wp
				writes := 0
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if i%period == 0 {
						m.Write(writes)
						writes++
					}
					k := i % len(sqs)
					opts := Options{Bind: sqs[k].Bind, MaxProductStates: 50_000_000, NoAdvance: noAdvance}
					if _, err := cps[k].EvalSnapshot(ctx, m.Graph.Snapshot(), opts); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// E22 — scale: the single-component product-BFS hot loop at several
// worker counts. The permissive (a|b)*-style languages under el keep
// every graph edge live, so the product frontier grows into the
// thousands and the level-synchronous parallel BFS has real work to
// shard. bfs binds the source, so the whole run is ONE product
// traversal — the frontier-sharding axis in isolation; fanout leaves
// the endpoints unbound, so the run is many start assignments — the
// second parallel axis (the per-assignment engines are sequential
// there). workers=1 is the exact sequential engine (the ablation
// baseline benchtables records with `-suite bigcomp -baseline`);
// workers=0 is all cores. Answers and fingerprints are byte-identical
// across the axis — see internal/ecrpq/parallel_test.go — so all
// sub-benchmarks do identical semantic work.
func BenchmarkScale_BigComponent(b *testing.B) {
	q := ecrpq.MustParse("Ans(x,y) <- (x,p1,z), (z,p2,y), (a|b)*a(p1), (a|b)*b(p2), el(p1,p2)", benchEnv())
	for _, n := range []int{64, 128} {
		g := workload.Random(rand.New(rand.NewSource(8)), n, 3.0, benchSigma)
		bind := map[ecrpq.NodeVar]graph.Node{"x": 0}
		for _, w := range []int{1, 0} {
			b.Run(fmt.Sprintf("bfs/n=%d/workers=%d", n, w), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := ecrpq.Eval(q, g, ecrpq.Options{Bind: bind, BFSWorkers: w, MaxProductStates: 50_000_000}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
	g := workload.Random(rand.New(rand.NewSource(8)), 32, 3.0, benchSigma)
	for _, w := range []int{1, 0} {
		b.Run(fmt.Sprintf("fanout/n=32/workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ecrpq.Eval(q, g, ecrpq.Options{BFSWorkers: w, MaxProductStates: 50_000_000}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E16 — ablation: Yannakakis vs backtracking join.
func BenchmarkAblation_Yannakakis(b *testing.B) {
	g := workload.Random(rand.New(rand.NewSource(16)), 48, 2.0, benchSigma)
	// m = 5: large enough to show the semijoin advantage, small enough
	// that the exponential backtracking baseline still terminates.
	q, err := workload.ChainCRPQ(5, []string{"a*", "b*"})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("yannakakis", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ecrpq.Eval(q, g, ecrpq.Options{Join: ecrpq.JoinYannakakis}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("backtrack", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ecrpq.Eval(q, g, ecrpq.Options{Join: ecrpq.JoinBacktrack}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// E20 — scale: the mixed read/write serving path of the epoch-versioned
// snapshot store. snapshot_after_write isolates the cost the store pays
// to publish a fresh snapshot after a single AddEdge on a warm ~100k
// edge graph: the delta overlay (O(Δ log Δ + n)) against the
// full-rebuild ablation (SetDeltaOverlay(false), the pre-epoch
// behavior, O(m log m) per write). The serve cases interleave writes
// with prepared snapshot queries at write ratios {1%, 10%} — the
// end-to-end shape; `benchtables -json BENCH.json` records them and
// `-baseline` reruns them with overlays disabled for `-compare`.
func BenchmarkScale_MixedReadWrite(b *testing.B) {
	for _, c := range []struct {
		name    string
		overlay bool
	}{{"snapshot_after_write/overlay", true}, {"snapshot_after_write/rebuild", false}} {
		b.Run(c.name, func(b *testing.B) {
			m := workload.NewMixedServing(20)
			m.Graph.SetDeltaOverlay(c.overlay)
			m.Graph.Snapshot() // warm: compacted base
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Write(i)
				if s := m.Graph.Snapshot(); s.NumEdges() == 0 {
					b.Fatal("empty snapshot")
				}
			}
		})
	}
	for _, wp := range workload.MixedWritePcts {
		b.Run(fmt.Sprintf("serve/write_pct=%d", wp), func(b *testing.B) {
			m := workload.NewMixedServing(20)
			p, err := plan.Compile(m.Query, m.Env())
			if err != nil {
				b.Fatal(err)
			}
			opts := ecrpq.Options{Bind: m.Bind, MaxProductStates: 50_000_000}
			m.Graph.Snapshot() // warm
			period := 100 / wp
			writes := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i%period == 0 {
					m.Write(writes)
					writes++
				}
				s := m.Graph.Snapshot()
				if _, err := p.EvalSnapshot(context.Background(), s, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
