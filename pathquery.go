// Package pathquery is the public API of this repository: a complete Go
// implementation of extended conjunctive regular path queries (ECRPQs)
// from Barceló, Libkin, Lin and Wood, "Expressive Languages for Path
// Queries over Graph-Structured Data" (PODS 2010 / ACM TODS 37(4), 2012).
//
// The package re-exports the building blocks a downstream user needs:
//
//   - Graph databases: Graph, Node, Path (Σ-labeled directed graphs).
//   - Queries: Query, parsed from text (ParseQuery) or built fluently
//     (NewQuery); CRPQs are the unary-relation special case.
//   - Regular relations on path labels: Relation, with the paper's
//     library (Equality, EqualLength, Prefix, EditDistance, …) and
//     arbitrary tuple regular expressions (TupleRegex).
//   - Evaluation: Prepare/Prepared (plan once, then Eval or Stream
//     concurrently with context cancellation and limits), Eval (the
//     one-shot Section 5 convolution construction), Member (the
//     ECRPQ-EVAL decision problem of Section 6), PathAutomaton
//     (Proposition 5.2 answer representation).
//   - Extensions: the length abstraction Q_len (Section 6.3), linear
//     constraints on label occurrences and path lengths (Section 8.2),
//     the negation fragment ECRPQ¬ (Section 8.1, package
//     internal/neg), and containment checking (Section 7).
//
// A minimal session:
//
//	g := pathquery.NewGraph()
//	u, v, w := g.AddNode("u"), g.AddNode("v"), g.AddNode("w")
//	g.AddEdge(u, 'a', v)
//	g.AddEdge(v, 'b', w)
//	q, _ := pathquery.ParseQuery(
//		"Ans(x, y) <- (x,p1,z), (z,p2,y), a+(p1), b+(p2), el(p1,p2)",
//		pathquery.Env{Sigma: []rune{'a', 'b'}})
//	res, _ := pathquery.Eval(q, g, pathquery.Options{})
//	for _, ans := range res.Answers { ... }
package pathquery

import (
	"context"
	"iter"

	"repro/internal/ecrpq"
	"repro/internal/graph"
	"repro/internal/plan"
	"repro/internal/qcache"
	"repro/internal/qerr"
	"repro/internal/regex"
	"repro/internal/relations"
)

// The typed failure taxonomy (see internal/qerr): every non-bug way an
// evaluation or the serving layer can fail has one sentinel, and every
// layer of the stack returns errors.Is-able errors against them.
// Deadline and cancellation failures additionally match the underlying
// context error (context.DeadlineExceeded / context.Canceled).
var (
	// ErrBudgetExceeded: evaluation exceeded Options.MaxProductStates.
	ErrBudgetExceeded = qerr.ErrBudgetExceeded
	// ErrDeadline: the context deadline expired mid-evaluation.
	ErrDeadline = qerr.ErrDeadline
	// ErrCanceled: the context was canceled mid-evaluation.
	ErrCanceled = qerr.ErrCanceled
	// ErrOverloaded: a serving layer refused the request at admission
	// (queue full, concurrency cap, draining).
	ErrOverloaded = qerr.ErrOverloaded
	// ErrStale: a degraded read found no cached result within the
	// permitted epoch lag.
	ErrStale = qerr.ErrStale
)

// Core data model.
type (
	// Graph is a Σ-labeled graph database (Section 2 of the paper). The
	// store is epoch-versioned: mutations are serialized and advance a
	// monotonic epoch, and Snapshot() returns an immutable epoch-stamped
	// view that evaluation reads — so queries can be served concurrently
	// with writes (see Snapshot).
	Graph = graph.DB
	// Snapshot is an immutable, epoch-stamped view of a Graph: the last
	// compacted CSR index plus a delta overlay of the writes since. A
	// pinned Snapshot never changes, so Prepared.EvalSnapshot and
	// StreamSnapshot against it are fully isolated from concurrent
	// AddEdge/AddNode traffic, and a snapshot taken right after a write
	// costs O(Δ) in the number of writes since the last compaction, not
	// a full index rebuild.
	Snapshot = graph.Snapshot
	// Node identifies a graph node.
	Node = graph.Node
	// Path is a path v₀a₀v₁⋯ with its label λ(ρ).
	Path = graph.Path
	// Query is an ECRPQ (Definition 3.1).
	Query = ecrpq.Query
	// NodeVar and PathVar are query variables.
	NodeVar = ecrpq.NodeVar
	// PathVar is a path variable.
	PathVar = ecrpq.PathVar
	// Env supplies alphabet and named relations to the query parser.
	Env = ecrpq.Env
	// Options tune evaluation.
	Options = ecrpq.Options
	// StreamOptions tune streaming evaluation (Options plus Limit).
	StreamOptions = ecrpq.StreamOptions
	// Result is a query result with answers and path-automaton access.
	Result = ecrpq.Result
	// Answer is one output tuple (nodes, witness paths).
	Answer = ecrpq.Answer
	// Relation is an n-ary regular relation over path labels.
	Relation = relations.Relation
	// PathAutomaton is the Proposition 5.2 representation of all path
	// answers.
	PathAutomaton = ecrpq.PathAutomaton
	// Builder assembles queries fluently.
	Builder = ecrpq.Builder
)

// Bot is the padding symbol ⊥ (written "_" in textual regexes).
const Bot = regex.Bot

// NewGraph returns an empty graph database.
func NewGraph() *Graph { return graph.NewDB() }

// ParseQuery parses the textual ECRPQ syntax; see ecrpq.Parse.
func ParseQuery(src string, env Env) (*Query, error) { return ecrpq.Parse(src, env) }

// NewQuery starts a fluent query builder.
func NewQuery() *Builder { return ecrpq.NewBuilder() }

// Eval evaluates an ECRPQ by the convolution construction of Section 5.
// It is a convenience shim over the plan/execute split: the query is
// compiled once (and cached) and run to completion. For repeated
// evaluation, deadlines, or streaming, use Prepare.
func Eval(q *Query, g *Graph, opts Options) (*Result, error) { return ecrpq.Eval(q, g, opts) }

// Prepared is a compiled query — the public face of the plan/execute
// split. Prepare once, then Eval or Stream any number of times, against
// any graph, from any number of goroutines: the component
// decomposition, joint relation automata and join strategy are compiled
// once and shared; only graph-dependent work is paid per call.
type Prepared struct {
	plan *plan.Plan
}

// Prepare compiles q against env into a reusable Prepared query. The
// query must not be mutated while the Prepared is in use.
func Prepare(q *Query, env Env) (*Prepared, error) {
	p, err := plan.Compile(q, env)
	if err != nil {
		return nil, err
	}
	return &Prepared{plan: p}, nil
}

// Eval runs the prepared query to completion over the current snapshot
// of g, materializing the full sorted answer set — identical semantics
// to the package-level Eval. It is a take-current-snapshot shim over
// EvalSnapshot.
func (p *Prepared) Eval(g *Graph, opts Options) (*Result, error) {
	return p.plan.Eval(context.Background(), g, opts)
}

// EvalContext is Eval with cancellation: ctx is checked inside the
// product BFS and the joins, so a deadline or cancel aborts promptly
// with ctx.Err().
func (p *Prepared) EvalContext(ctx context.Context, g *Graph, opts Options) (*Result, error) {
	return p.plan.Eval(ctx, g, opts)
}

// EvalSnapshot runs the prepared query against a pinned immutable
// snapshot. The execution never reads the live Graph, so it is fully
// isolated from concurrent writers — the mixed read/write serving
// shape is
//
//	s := g.Snapshot()          // O(Δ) after a write, cached per epoch
//	res, err := p.EvalSnapshot(ctx, s, opts)
//
// and repeated evaluations against the same snapshot (unchanged epoch)
// keep the per-epoch move-plan memos warm.
func (p *Prepared) EvalSnapshot(ctx context.Context, s *Snapshot, opts Options) (*Result, error) {
	return p.plan.EvalSnapshot(ctx, s, opts)
}

// Stream runs the prepared query over g and yields answers
// incrementally, in discovery order: each distinct node tuple is
// yielded once with the first witness found (not necessarily the
// shortest — Eval refines duplicates, a stream cannot). opts.Limit
// stops the execution — not just the iteration — after that many
// answers, and ctx cancellation is honored mid-BFS. Breaking out of
// the range loop tears the execution down cleanly.
func (p *Prepared) Stream(ctx context.Context, g *Graph, opts StreamOptions) iter.Seq2[Answer, error] {
	return p.plan.Stream(ctx, g, opts)
}

// StreamSnapshot is Stream against a pinned immutable snapshot: answers
// keep flowing from one consistent epoch while writers mutate the
// store underneath.
func (p *Prepared) StreamSnapshot(ctx context.Context, s *Snapshot, opts StreamOptions) iter.Seq2[Answer, error] {
	return p.plan.StreamSnapshot(ctx, s, opts)
}

// Explain describes the compiled plan: component decomposition and join
// strategy.
func (p *Prepared) Explain() string { return p.plan.Explain() }

// Cache is an epoch-keyed, memory-bounded result cache with
// single-flight admission (see internal/qcache): entries are keyed on
// (compiled program, snapshot source+epoch, canonicalized options), so
// a hit is always byte-identical to re-evaluating against the same
// snapshot, concurrent identical queries at one epoch pay a single
// product BFS, stale epochs are dropped as the store advances, and an
// LRU keeps the total cached bytes under the configured budget. One
// Cache may be shared by any number of Prepared queries and graphs.
type Cache = qcache.Cache

// CacheStats is the counter snapshot returned by Cache.Stats.
type CacheStats = qcache.Stats

// NewCache returns a result cache bounded to maxBytes of cached
// answers.
func NewCache(maxBytes int64) *Cache { return qcache.New(maxBytes) }

// Cached wraps the prepared query with a result cache: the returned
// handle evaluates exactly like the Prepared it wraps, except that
// repeated evaluations with the same options at an unchanged snapshot
// epoch are served from c (and concurrent identical evaluations are
// deduplicated to one). Results served through the wrapper are shared
// between callers and must be treated as immutable. A nil cache
// returns a pass-through wrapper.
func (p *Prepared) Cached(c *Cache) *CachedPrepared {
	return &CachedPrepared{p: p, c: c}
}

// CachedPrepared is a Prepared query bound to a result cache; obtain
// one from Prepared.Cached.
type CachedPrepared struct {
	p *Prepared
	c *Cache
}

// Eval is Prepared.Eval through the cache (current snapshot of g,
// background context).
func (cp *CachedPrepared) Eval(g *Graph, opts Options) (*Result, error) {
	res, _, err := cp.p.plan.EvalCached(context.Background(), g, opts, cp.c)
	return res, err
}

// EvalContext is Prepared.EvalContext through the cache. A caller that
// joins another caller's in-flight evaluation honors its own ctx while
// waiting; the underlying evaluation runs on the leader's.
func (cp *CachedPrepared) EvalContext(ctx context.Context, g *Graph, opts Options) (*Result, error) {
	res, _, err := cp.p.plan.EvalCached(ctx, g, opts, cp.c)
	return res, err
}

// EvalSnapshot is Prepared.EvalSnapshot through the cache: the serving
// path for mixed read/write traffic —
//
//	s := g.Snapshot()
//	res, err := cp.EvalSnapshot(ctx, s, opts)
//
// pays one product BFS per (query, options, epoch) no matter how many
// goroutines ask.
func (cp *CachedPrepared) EvalSnapshot(ctx context.Context, s *Snapshot, opts Options) (*Result, error) {
	res, _, err := cp.p.plan.EvalSnapshotCached(ctx, s, opts, cp.c)
	return res, err
}

// Prepared returns the underlying prepared query (for Stream and
// Explain, which bypass the cache).
func (cp *CachedPrepared) Prepared() *Prepared { return cp.p }

// Stats returns the cache's counters (zero value for a nil cache).
func (cp *CachedPrepared) Stats() CacheStats {
	if cp.c == nil {
		return CacheStats{}
	}
	return cp.c.Stats()
}

// Member decides (v̄, ρ̄) ∈ Q(G) — the ECRPQ-EVAL problem of Section 6.
func Member(q *Query, g *Graph, nodes []Node, paths []Path, opts Options) (bool, error) {
	return ecrpq.Member(q, g, nodes, paths, opts)
}

// BuildPathAutomaton constructs the Proposition 5.2 answer automaton for
// fixed head-node values, honoring opts.MaxProductStates.
func BuildPathAutomaton(q *Query, g *Graph, headNodes []Node, opts Options) (*PathAutomaton, error) {
	return ecrpq.BuildPathAutomaton(q, g, headNodes, opts)
}

// Built-in regular relations (Sections 1–4 of the paper).
var (
	// Equality is π₁ = π₂.
	Equality = relations.Equality
	// EqualLength is el(π₁, π₂): |π₁| = |π₂|.
	EqualLength = relations.EqualLength
	// Prefix is π₁ ⪯ π₂.
	Prefix = relations.Prefix
	// ShorterLen is |π₁| < |π₂|.
	ShorterLen = relations.ShorterLen
	// ShorterEqLen is |π₁| ≤ |π₂|.
	ShorterEqLen = relations.ShorterEqLen
	// Morphism is the synchronous letter transformation.
	Morphism = relations.Morphism
	// EditDistance is D≤k, the bounded edit distance relation.
	EditDistance = relations.EditDistance
	// RhoIso is the ρ-isomorphism relation of semantic associations.
	RhoIso = relations.RhoIso
)

// TupleRegex builds an n-ary relation from a regular expression over
// tuple symbols, e.g. "(<a,a>|<b,b>)*(<_,a>|<_,b>)*" for prefix.
func TupleRegex(name, src string, arity int) (*Relation, error) {
	node, err := regex.ParseTuple(src, arity)
	if err != nil {
		return nil, err
	}
	return relations.FromTupleRegex(name, node, arity), nil
}

// LangRegex builds a unary relation (a regular language) from a regular
// expression over Σ.
func LangRegex(src string) (*Relation, error) {
	node, err := regex.Parse(src)
	if err != nil {
		return nil, err
	}
	return relations.FromLanguage(src, node), nil
}
