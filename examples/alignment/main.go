// Biological sequence alignment with ECRPQs (Section 4 of the paper):
// decide bounded edit distance with the regular relation D≤k, and extract
// the actual gaps and mismatches with the alignment-extraction query.
//
//	go run ./examples/alignment
package main

import (
	"fmt"
	"log"

	"repro/internal/align"
)

func main() {
	dna := []rune{'a', 'c', 'g', 't'}
	pairs := [][2]string{
		{"acgt", "acgt"},
		{"acgt", "agt"},
		{"gattaca", "gatttaca"},
		{"acca", "tcct"},
	}
	for _, p := range pairs {
		x, y := p[0], p[1]
		d := align.Distance(x, y)
		within, err := align.WithinK(x, y, 2, dna)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("de(%q, %q) = %d; ECRPQ D≤2 says within 2: %v\n", x, y, d, within)
		al, ok, err := align.Extract(x, y, 2, dna)
		if err != nil {
			log.Fatal(err)
		}
		if !ok {
			fmt.Println("  no alignment within distance 2")
			continue
		}
		fmt.Printf("  alignment at distance %d:", al.K)
		if len(al.Edits) == 0 {
			fmt.Print(" identical")
		}
		for _, e := range al.Edits {
			switch {
			case e.X == "":
				fmt.Printf(" [insert %s]", e.Y)
			case e.Y == "":
				fmt.Printf(" [delete %s]", e.X)
			default:
				fmt.Printf(" [%s→%s]", e.X, e.Y)
			}
		}
		fmt.Println()
	}
}
