// Route finding with linear occurrence constraints (Section 8.2 of the
// paper): find itineraries where at least 80% of the legs are with a
// preferred airline — the constraint a − 4b ≥ 0 over leg counts, which is
// not expressible with regular relations alone.
//
//	go run ./examples/flights
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/ilp"
	"repro/internal/linconstr"
	"repro/internal/workload"

	"repro"
)

func main() {
	// s = Singapore Airlines, q = anything else.
	airlines := []rune{'s', 'q'}
	g := workload.FlightNetwork(rand.New(rand.NewSource(7)), 12, airlines)
	origin := pathquery.Node(0)
	dest := pathquery.Node(g.NumNodes() - 1)

	env := pathquery.Env{Sigma: airlines}
	q, err := pathquery.ParseQuery("Ans() <- (x,p,y), (s|q)+(p)", env)
	if err != nil {
		log.Fatal(err)
	}
	bind := map[pathquery.NodeVar]pathquery.Node{"x": origin, "y": dest}

	check := func(label string, cons []linconstr.Constraint) {
		ok, err := linconstr.Feasible(q, cons, g, airlines, bind, linconstr.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-55s : %v\n", label, ok)
	}

	check("any itinerary London→Sydney", nil)
	check("≥80% Singapore Airlines (s − 4q ≥ 0)", []linconstr.Constraint{{
		Terms: []linconstr.Term{{Path: "p", Label: 's', Coef: 1}, {Path: "p", Label: 'q', Coef: -4}},
		Rel:   ilp.GE, RHS: 0,
	}})
	check("≥80% Singapore AND at most 6 legs", []linconstr.Constraint{
		{
			Terms: []linconstr.Term{{Path: "p", Label: 's', Coef: 1}, {Path: "p", Label: 'q', Coef: -4}},
			Rel:   ilp.GE, RHS: 0,
		},
		{
			Terms: []linconstr.Term{{Path: "p", Coef: 1}}, // Label 0 = length
			Rel:   ilp.LE, RHS: 6,
		},
	})
	check("100% other airlines (s = 0) with ≥1 leg", []linconstr.Constraint{
		{Terms: []linconstr.Term{{Path: "p", Label: 's', Coef: 1}}, Rel: ilp.EQ, RHS: 0},
		{Terms: []linconstr.Term{{Path: "p", Label: 'q', Coef: 1}}, Rel: ilp.GE, RHS: 1},
	})
}
