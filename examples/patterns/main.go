// Pattern matching with ECRPQs (Sections 1 and 4 of the paper): pattern
// languages (with repeated variables) compile to ECRPQs via path
// equality, and even non-context-free targets like aⁿbⁿcⁿ are a single
// query with the equal-length relation.
//
//	go run ./examples/patterns
package main

import (
	"fmt"
	"log"

	"repro/internal/pattern"
	"repro/internal/workload"

	"repro"
)

func main() {
	sigma := []rune{'a', 'b'}

	// The squared-strings pattern XX of the introduction.
	squares := pattern.Parse("XX")
	for _, w := range []string{"", "abab", "aa", "aba", "abba"} {
		ok, err := squares.MatchString(w, sigma)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("XX matches %-6q : %v\n", w, ok)
	}

	// The pattern aXbX from Section 1.
	axbx := pattern.Parse("aXbX")
	fmt.Println()
	for _, w := range []string{"ab", "aaba", "abbb", "abab"} {
		ok, err := axbx.MatchString(w, sigma)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("aXbX matches %-6q : %v\n", w, ok)
	}

	// aⁿbⁿcⁿ — not a pattern language, but an ECRPQ with two el atoms
	// (Section 4).
	env := pathquery.Env{Sigma: []rune{'a', 'b', 'c'}}
	q, err := pathquery.ParseQuery(
		"Ans(x, y) <- (x,p1,z1), (z1,p2,z2), (z2,p3,y), a*(p1), b*(p2), c*(p3), el(p1,p2), el(p2,p3)", env)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	for _, s := range []string{"abc", "aabbcc", "aabbc", "acb"} {
		g, from, to := workload.StringGraph(s)
		res, err := pathquery.Eval(q, g, pathquery.Options{
			Bind: map[pathquery.NodeVar]pathquery.Node{"x": from, "y": to},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("aⁿbⁿcⁿ matches %-8q : %v\n", s, res.Bool())
	}
}
