// Quickstart: build a small graph database, prepare CRPQs and ECRPQs
// once, evaluate and stream them, and inspect node answers, witness
// paths, and the answer automaton.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	// A small graph: two a-chains meeting a b-chain.
	//
	//	v0 -a-> v1 -a-> v2 -b-> v3 -b-> v4
	g := pathquery.NewGraph()
	var nodes []pathquery.Node
	for i := 0; i <= 4; i++ {
		nodes = append(nodes, g.AddNode(fmt.Sprintf("v%d", i)))
	}
	g.AddEdge(nodes[0], 'a', nodes[1])
	g.AddEdge(nodes[1], 'a', nodes[2])
	g.AddEdge(nodes[2], 'b', nodes[3])
	g.AddEdge(nodes[3], 'b', nodes[4])

	env := pathquery.Env{Sigma: []rune{'a', 'b'}}

	// A plain CRPQ: which pairs are connected by a path in a+b+?
	// Prepare compiles the query once; the prepared form is reusable
	// across graphs and safe for concurrent use.
	crpq, err := pathquery.ParseQuery("Ans(x, y) <- (x,p,y), a+b+(p)", env)
	if err != nil {
		log.Fatal(err)
	}
	prep, err := pathquery.Prepare(crpq, env)
	if err != nil {
		log.Fatal(err)
	}
	res, err := prep.Eval(g, pathquery.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("CRPQ a+b+ answers:")
	for _, a := range res.Answers {
		fmt.Printf("  (%s, %s)\n", g.Name(a.Nodes[0]), g.Name(a.Nodes[1]))
	}

	// The ECRPQ of Proposition 3.2: pairs connected by aⁿbⁿ — beyond any
	// CRPQ, using the equal-length relation el.
	ecrpq, err := pathquery.ParseQuery(
		"Ans(x, y, p1, p2) <- (x,p1,z), (z,p2,y), a+(p1), b+(p2), el(p1,p2)", env)
	if err != nil {
		log.Fatal(err)
	}
	prepE, err := pathquery.Prepare(ecrpq, env)
	if err != nil {
		log.Fatal(err)
	}
	res, err = prepE.Eval(g, pathquery.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nECRPQ aⁿbⁿ answers with witness paths:")
	for _, a := range res.Answers {
		fmt.Printf("  (%s, %s): %s | %s\n",
			g.Name(a.Nodes[0]), g.Name(a.Nodes[1]),
			a.Paths[0].Format(g), a.Paths[1].Format(g))
	}

	// Streaming: answers arrive in discovery order; Limit stops the
	// evaluation itself (not just the loop) after the first answer —
	// the fast path for "does anything match, and show me one".
	fmt.Println("\nFirst streamed answer:")
	for a, err := range prepE.Stream(context.Background(), g,
		pathquery.StreamOptions{Limit: 1}) {
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  (%s, %s)\n", g.Name(a.Nodes[0]), g.Name(a.Nodes[1]))
	}

	// The full (possibly infinite) set of path answers for one node pair,
	// per Proposition 5.2.
	pa, err := pathquery.BuildPathAutomaton(ecrpq, g,
		[]pathquery.Node{nodes[0], nodes[4]}, pathquery.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nAll path pairs for (v0, v4):")
	for _, tuple := range pa.Enumerate(10, 10) {
		fmt.Printf("  %q, %q\n", tuple[0].LabelString(), tuple[1].LabelString())
	}

	// Membership (the ECRPQ-EVAL decision problem): is (v1, v3) an answer
	// of the Boolean projection?
	boolQ, err := pathquery.ParseQuery(
		"Ans(x, y) <- (x,p1,z), (z,p2,y), a+(p1), b+(p2), el(p1,p2)", env)
	if err != nil {
		log.Fatal(err)
	}
	ok, err := pathquery.Member(boolQ, g, []pathquery.Node{nodes[1], nodes[3]}, nil, pathquery.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nMember((v1,v3)) = %v\n", ok)
}
