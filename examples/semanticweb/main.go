// Semantic-web associations (Section 4 of the paper, after Anyanwu &
// Sheth): declare a subproperty hierarchy over RDF-style properties, find
// ρ-isoAssociated entities, and return the actual ρ-isomorphic property
// sequences with a ρ-query.
//
//	go run ./examples/semanticweb
package main

import (
	"fmt"
	"log"

	"repro/internal/rdf"

	"repro"
)

func main() {
	// Properties: c = "createdBy", s = "supervisedBy", f = "fundedBy",
	// with c ≺ s (creation is a kind of supervision for this ontology).
	h := rdf.NewHierarchy().Sub('c', 's').Reflexive()

	// A small provenance graph: two artifacts trace back to labs through
	// comparable property chains.
	g := pathquery.NewGraph()
	paper := g.AddNode("paper")
	dataset := g.AddNode("dataset")
	alice := g.AddNode("alice")
	bob := g.AddNode("bob")
	lab := g.AddNode("lab")
	agency := g.AddNode("agency")
	g.AddEdge(paper, 'c', alice)   // paper createdBy alice
	g.AddEdge(alice, 's', lab)     // alice supervisedBy lab
	g.AddEdge(dataset, 's', bob)   // dataset supervisedBy bob
	g.AddEdge(bob, 's', lab)       // bob supervisedBy lab
	g.AddEdge(lab, 'f', agency)    // lab fundedBy agency

	pairs, err := h.IsoAssociated(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("ρ-isoAssociated pairs:")
	for _, p := range pairs {
		if p[0] < p[1] { // print each unordered pair once
			fmt.Printf("  %s ~ %s\n", g.Name(p[0]), g.Name(p[1]))
		}
	}

	// The ρ-query: which property sequences witness the association of
	// paper and dataset?
	seqs, err := h.RhoQuery(g, paper, dataset, 10, 6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nρ-isomorphic property sequences from (paper, dataset):")
	for _, pr := range seqs {
		fmt.Printf("  %q ~ %q\n", pr[0].LabelString(), pr[1].LabelString())
	}
}
