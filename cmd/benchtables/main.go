// Command benchtables regenerates the paper's evaluation tables: every
// cell of Figure 1 (data/combined complexity of CRPQs, ECRPQs, acyclic
// restrictions, Q_len, repetition, negation, linear constraints) as an
// empirical scaling sweep, plus the Proposition 3.2 separation, the
// Proposition 5.2 answer-automaton sizes, and the two design ablations.
//
//	go run ./cmd/benchtables                   # all experiments
//	go run ./cmd/benchtables -only E8          # one experiment
//	go run ./cmd/benchtables -json BENCH.json  # machine-readable ECRPQ
//	                                           # engine benchmarks, for
//	                                           # cross-PR perf tracking
//
// The measured shapes are recorded against the paper in EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/experiments"
)

func main() {
	only := flag.String("only", "", "run a single experiment (E1..E16)")
	jsonPath := flag.String("json", "", "run the Fig1a ECRPQ engine benchmarks and write machine-readable results to this file")
	flag.Parse()
	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtables: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := experiments.WriteBenchJSON(f, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "benchtables: %v\n", err)
			os.Exit(1)
		}
		return
	}
	table := map[string]func(io.Writer){
		"E1":  experiments.E1CRPQData,
		"E2":  experiments.E2ECRPQData,
		"E3":  experiments.E3CRPQCombined,
		"E4":  experiments.E4E6ECRPQCombined,
		"E6":  experiments.E4E6ECRPQCombined,
		"E5":  experiments.E5AcyclicCRPQ,
		"E7":  experiments.E7Qlen,
		"E8":  experiments.E8Repetition,
		"E9":  experiments.E9CRPQNegData,
		"E10": experiments.E10ECRPQNeg,
		"E11": experiments.E11LinConstraints,
		"E12": experiments.E12Separation,
		"E14": experiments.E14AnswerAutomaton,
		"E15": experiments.E15Decomposition,
		"E16": experiments.E16Yannakakis,
	}
	if *only != "" {
		f, ok := table[*only]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchtables: unknown experiment %q\n", *only)
			os.Exit(2)
		}
		f(os.Stdout)
		return
	}
	experiments.All(os.Stdout)
}
