// Command benchtables regenerates the paper's evaluation tables: every
// cell of Figure 1 (data/combined complexity of CRPQs, ECRPQs, acyclic
// restrictions, Q_len, repetition, negation, linear constraints) as an
// empirical scaling sweep, plus the Proposition 3.2 separation, the
// Proposition 5.2 answer-automaton sizes, and the two design ablations.
//
//	go run ./cmd/benchtables                   # all experiments
//	go run ./cmd/benchtables -only E8          # one experiment
//	go run ./cmd/benchtables -json BENCH.json  # machine-readable ECRPQ
//	                                           # engine benchmarks (Fig1a
//	                                           # + Scale_LabelRich), for
//	                                           # cross-PR perf tracking
//	go run ./cmd/benchtables -json B.json -baseline
//	                                           # same suites as ablation
//	                                           # baselines: engine suites
//	                                           # without label-directed
//	                                           # pruning, bigcomp suite
//	                                           # with the sequential BFS
//	                                           # (BFSWorkers=1), mixed suite
//	                                           # without delta overlays,
//	                                           # serve suite without the
//	                                           # result cache
//	go run ./cmd/benchtables -json B.json -suite bigcomp
//	                                           # single-component parallel
//	                                           # product-BFS suite (all
//	                                           # cores); with -baseline the
//	                                           # sequential ablation — the
//	                                           # BENCH_8 comparison pair
//	go run ./cmd/benchtables -json B.json -suite bigalpha
//	                                           # RDF/Wikidata-scale label
//	                                           # spaces (|Σ| = 10⁴): cold
//	                                           # query service with the
//	                                           # label-class partition;
//	                                           # with -baseline the
//	                                           # per-symbol NoClasses
//	                                           # ablation — the BENCH_9
//	                                           # comparison pair
//	go run ./cmd/benchtables -json B.json -suite serve -noadvance
//	                                           # serve suite with the cache
//	                                           # but without the incremental
//	                                           # serving layer (revalidation
//	                                           # + delta BFS off) — the
//	                                           # BENCH_7 revalidation-off
//	                                           # baseline
//	go run ./cmd/benchtables -json B.json -suite durable
//	                                           # durable segment store:
//	                                           # cold start from the mapped
//	                                           # checkpoint, serve over the
//	                                           # mapped CSR, WAL-logged
//	                                           # writes; with -baseline the
//	                                           # parse-from-text boot and
//	                                           # memory-only writes — the
//	                                           # BENCH_10 comparison pair
//	go run ./cmd/benchtables -json M.json -suite mixed
//	                                           # one suite only (all,
//	                                           # engine, bigcomp, bigalpha,
//	                                           # mixed, serve, daemon,
//	                                           # durable) — e.g.
//	                                           # Scale_MixedReadWrite, the
//	                                           # Scale_RepeatedServe cached
//	                                           # serving suite, or the
//	                                           # Daemon_Serve end-to-end
//	                                           # HTTP latency suite
//	go run ./cmd/benchtables -compare old.json new.json
//	                                           # speedup/allocation table
//	                                           # between two bench files
//
// The measured shapes are recorded against the paper in EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/experiments"
)

func main() {
	only := flag.String("only", "", "run a single experiment (E1..E16)")
	jsonPath := flag.String("json", "", "run the ECRPQ engine benchmarks and write machine-readable results to this file")
	baseline := flag.Bool("baseline", false, "with -json: run the ablation baselines (engine suites without pruning, bigcomp suite with the sequential BFS, bigalpha suite with the per-symbol NoClasses expansion, mixed suite without delta overlays, durable suite with parse-from-text boot and memory-only writes)")
	noAdvance := flag.Bool("noadvance", false, "with -json -suite serve: keep the result cache but disable incremental re-evaluation (revalidation + delta BFS)")
	suite := flag.String("suite", "all", "with -json: benchmark suite to run (all, engine, bigcomp, bigalpha, mixed, serve, daemon, durable)")
	compare := flag.Bool("compare", false, "compare two bench JSON files (old new) and print a speedup table")
	flag.Parse()
	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchtables: -compare needs exactly two file arguments: old.json new.json")
			os.Exit(2)
		}
		oldRep, err := experiments.ReadBenchReport(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtables: %v\n", err)
			os.Exit(1)
		}
		newRep, err := experiments.ReadBenchReport(flag.Arg(1))
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtables: %v\n", err)
			os.Exit(1)
		}
		experiments.CompareBenchReports(os.Stdout, oldRep, newRep)
		return
	}
	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtables: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := experiments.WriteBenchJSON(f, os.Stdout, *baseline, *noAdvance, *suite); err != nil {
			fmt.Fprintf(os.Stderr, "benchtables: %v\n", err)
			os.Exit(1)
		}
		return
	}
	table := map[string]func(io.Writer){
		"E1":  experiments.E1CRPQData,
		"E2":  experiments.E2ECRPQData,
		"E3":  experiments.E3CRPQCombined,
		"E4":  experiments.E4E6ECRPQCombined,
		"E6":  experiments.E4E6ECRPQCombined,
		"E5":  experiments.E5AcyclicCRPQ,
		"E7":  experiments.E7Qlen,
		"E8":  experiments.E8Repetition,
		"E9":  experiments.E9CRPQNegData,
		"E10": experiments.E10ECRPQNeg,
		"E11": experiments.E11LinConstraints,
		"E12": experiments.E12Separation,
		"E14": experiments.E14AnswerAutomaton,
		"E15": experiments.E15Decomposition,
		"E16": experiments.E16Yannakakis,
	}
	if *only != "" {
		f, ok := table[*only]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchtables: unknown experiment %q\n", *only)
			os.Exit(2)
		}
		f(os.Stdout)
		return
	}
	experiments.All(os.Stdout)
}
