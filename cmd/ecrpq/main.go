// Command ecrpq evaluates ECRPQs over graph databases in the text format
// of internal/graph:
//
//	ecrpq -graph social.graph -query 'Ans(x,y) <- (x,p1,z), (z,p2,y), eq(p1,p2)'
//
// Flags:
//
//	-graph FILE   graph database (edge lines: `edge FROM LABEL TO` or
//	              `FROM -LABEL-> TO`); defaults to stdin
//	-query Q      the query (required); built-in relations: eq, el,
//	              prefix, lt, le, edit1..edit3; other names are parsed as
//	              regular expressions over the graph's alphabet
//	-paths N      for each answer also enumerate up to N path tuples from
//	              the answer automaton (Proposition 5.2)
//	-maxlen L     path length cap for -paths enumeration (default 12)
//	-budget N     product-state budget (default 4,000,000)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/ecrpq"
	"repro/internal/graph"
)

// config carries the parsed flags; run executes the tool over the given
// streams so tests can drive it without a process boundary.
type config struct {
	query  string
	nPaths int
	maxLen int
	budget int
}

func main() {
	graphFile := flag.String("graph", "", "graph database file (default: stdin)")
	querySrc := flag.String("query", "", "ECRPQ in textual syntax (required)")
	nPaths := flag.Int("paths", 0, "enumerate up to N path tuples per answer")
	maxLen := flag.Int("maxlen", 12, "path length cap for -paths")
	budget := flag.Int("budget", 0, "product-state budget (0 = default)")
	flag.Parse()

	if *querySrc == "" {
		fmt.Fprintln(os.Stderr, "ecrpq: -query is required")
		flag.Usage()
		os.Exit(2)
	}
	in := os.Stdin
	if *graphFile != "" {
		f, err := os.Open(*graphFile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	cfg := config{query: *querySrc, nPaths: *nPaths, maxLen: *maxLen, budget: *budget}
	if err := run(cfg, in, os.Stdout, os.Stderr); err != nil {
		fatal(err)
	}
}

func run(cfg config, in io.Reader, out, errw io.Writer) error {
	g, err := graph.ParseText(in)
	if err != nil {
		return err
	}
	env := ecrpq.Env{Sigma: g.Alphabet()}
	q, err := ecrpq.Parse(cfg.query, env)
	if err != nil {
		return err
	}
	res, err := ecrpq.Eval(q, g, ecrpq.Options{MaxProductStates: cfg.budget})
	if err != nil {
		return err
	}
	if q.IsBoolean() {
		fmt.Fprintln(out, res.Bool())
		return nil
	}
	for _, a := range res.Answers {
		for i, v := range a.Nodes {
			if i > 0 {
				fmt.Fprint(out, ", ")
			}
			fmt.Fprint(out, g.Name(v))
		}
		for _, p := range a.Paths {
			fmt.Fprintf(out, " | %s", p.Format(g))
		}
		fmt.Fprintln(out)
		if cfg.nPaths > 0 && len(q.HeadPaths) > 0 {
			pa, err := ecrpq.BuildPathAutomaton(q, g, a.Nodes)
			if err != nil {
				return err
			}
			for _, tuple := range pa.Enumerate(cfg.nPaths, cfg.maxLen) {
				fmt.Fprint(out, "    paths:")
				for _, p := range tuple {
					fmt.Fprintf(out, " %q", p.LabelString())
				}
				fmt.Fprintln(out)
			}
		}
	}
	fmt.Fprintf(errw, "%d answers\n", len(res.Answers))
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ecrpq:", err)
	os.Exit(1)
}
