// Command ecrpq evaluates ECRPQs over graph databases in the text format
// of internal/graph:
//
//	ecrpq -graph social.graph -query 'Ans(x,y) <- (x,p1,z), (z,p2,y), eq(p1,p2)'
//
// Flags:
//
//	-graph FILE   graph database (edge lines: `edge FROM LABEL TO` or
//	              `FROM -LABEL-> TO`); defaults to stdin
//	-data DIR     durable store directory (shared with ecrpqd): recover the
//	              graph from DIR instead of parsing text. With -graph, the
//	              file is bulk-imported once when the store is empty.
//	              Mutations (replay mode) are write-ahead logged.
//	-checkpoint   with -data: compact the WAL into a fresh segment file and
//	              exit (offline compaction; -query becomes optional) — run
//	              it while the daemon is stopped to make its next boot
//	              replay-free
//	-query Q      the query (required); built-in relations: eq, el,
//	              prefix, lt, le, edit1..edit3; other names are parsed as
//	              regular expressions over the graph's alphabet
//	-paths N      for each answer also enumerate up to N path tuples from
//	              the answer automaton (Proposition 5.2)
//	-maxlen L     path length cap for -paths enumeration (default 12)
//	-budget N     product-state budget (default 4,000,000)
//	-limit N      stream at most N answers and stop the evaluation early
//	              (answers arrive in discovery order, unsorted)
//	-timeout D    abort evaluation after duration D (e.g. 500ms, 2s)
//	-explain      print the compiled plan before evaluating
//	-replay FILE  mutation/replay mode: after loading the initial graph,
//	              process FILE line by line — graph text lines (`edge
//	              FROM LABEL TO`, `FROM -LABEL-> TO`, `node N`) mutate
//	              the store, and each `query` line pins the current
//	              snapshot and evaluates the prepared query against it,
//	              printing the snapshot epoch with the answers. This
//	              exercises the epoch-versioned serving path end to end:
//	              writes append delta overlays, queries read immutable
//	              snapshots. Malformed lines are reported and counted but
//	              do not abort the replay; when any occurred the summary
//	              carries the count and the command exits non-zero.
//	-cache N      serve materialized evaluations through an epoch-keyed
//	              result cache bounded to N bytes (0 = off): repeated
//	              `query` lines at an unchanged epoch are answered from
//	              the cache instead of re-running the product BFS, and
//	              epoch advances invalidate. The replay summary reports
//	              hit/miss counts.
//
// The query is compiled once into a plan (pathquery.Prepare) and then
// executed; -limit switches from materialized evaluation to the
// streaming executor.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/ecrpq"
	"repro/internal/graph"
	"repro/internal/plan"
	"repro/internal/qcache"
)

// config carries the parsed flags; run executes the tool over the given
// streams so tests can drive it without a process boundary.
type config struct {
	query      string
	nPaths     int
	maxLen     int
	budget     int
	limit      int
	timeout    time.Duration
	explain    bool
	replay     string
	cache      int64
	dataDir    string
	checkpoint bool
	// importIn: with -data, bulk-import the input reader into an empty
	// store (set when -graph was given explicitly; stdin is never
	// implicitly imported into a durable store).
	importIn bool
}

func main() {
	graphFile := flag.String("graph", "", "graph database file (default: stdin)")
	querySrc := flag.String("query", "", "ECRPQ in textual syntax (required)")
	nPaths := flag.Int("paths", 0, "enumerate up to N path tuples per answer")
	maxLen := flag.Int("maxlen", 12, "path length cap for -paths")
	budget := flag.Int("budget", 0, "product-state budget (0 = default)")
	limit := flag.Int("limit", 0, "stream at most N answers (0 = evaluate fully)")
	timeout := flag.Duration("timeout", 0, "evaluation deadline (0 = none)")
	explain := flag.Bool("explain", false, "print the compiled plan")
	replay := flag.String("replay", "", "mutation/replay script: graph text lines mutate, `query` lines evaluate a snapshot")
	cache := flag.Int64("cache", 0, "epoch-keyed result cache budget in bytes (0 = disabled)")
	dataDir := flag.String("data", "", "durable store directory (shared with ecrpqd); empty = in-memory from graph text")
	checkpoint := flag.Bool("checkpoint", false, "with -data: offline compaction — checkpoint the store and exit")
	flag.Parse()

	if *checkpoint && *dataDir == "" {
		fmt.Fprintln(os.Stderr, "ecrpq: -checkpoint requires -data")
		flag.Usage()
		os.Exit(2)
	}
	if *querySrc == "" && !*checkpoint {
		fmt.Fprintln(os.Stderr, "ecrpq: -query is required")
		flag.Usage()
		os.Exit(2)
	}
	in := io.Reader(os.Stdin)
	if *graphFile != "" {
		f, err := os.Open(*graphFile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	} else if *dataDir != "" {
		// Durable store: the graph comes from the segment+WAL directory,
		// never implicitly from stdin.
		in = nil
	}
	cfg := config{
		query: *querySrc, nPaths: *nPaths, maxLen: *maxLen, budget: *budget,
		limit: *limit, timeout: *timeout, explain: *explain, replay: *replay,
		cache: *cache, dataDir: *dataDir, checkpoint: *checkpoint,
		importIn: *graphFile != "",
	}
	if err := run(cfg, in, os.Stdout, os.Stderr); err != nil {
		fatal(err)
	}
}

func run(cfg config, in io.Reader, out, errw io.Writer) error {
	g, err := openGraph(cfg, in, errw)
	if err != nil {
		return err
	}
	defer g.Close()
	if cfg.checkpoint {
		if err := g.Checkpoint(); err != nil {
			return err
		}
		d := g.DurableStats()
		fmt.Fprintf(errw, "checkpoint: %s at epoch %d (%d checkpoints, wal %d bytes)\n",
			d.Dir, d.LastCheckpoint, d.Checkpoints, d.WALBytes)
		if cfg.query == "" {
			return nil
		}
	}
	env := ecrpq.Env{Sigma: g.Alphabet()}
	q, err := ecrpq.Parse(cfg.query, env)
	if err != nil {
		return err
	}
	p, err := plan.Compile(q, env)
	if err != nil {
		return err
	}
	if cfg.explain {
		fmt.Fprint(errw, p.Explain())
	}
	ctx := context.Background()
	if cfg.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.timeout)
		defer cancel()
	}
	opts := ecrpq.Options{MaxProductStates: cfg.budget}
	var qc *qcache.Cache
	if cfg.cache > 0 {
		qc = qcache.New(cfg.cache)
	}
	if cfg.replay != "" {
		f, err := os.Open(cfg.replay)
		if err != nil {
			return err
		}
		defer f.Close()
		return runReplay(ctx, cfg, p, q, g, f, opts, qc, out, errw)
	}
	if cfg.limit > 0 {
		return runStream(ctx, cfg, p, q, g, opts, out, errw)
	}
	res, _, err := p.EvalCached(ctx, g, opts, qc)
	if err != nil {
		return err
	}
	if q.IsBoolean() {
		fmt.Fprintln(out, res.Bool())
		return nil
	}
	for _, a := range res.Answers {
		if err := printAnswer(cfg, q, g, a, out); err != nil {
			return err
		}
	}
	fmt.Fprintf(errw, "%d answers\n", len(res.Answers))
	return nil
}

// runStream prints answers as the streaming executor discovers them,
// stopping the evaluation after cfg.limit answers.
func runStream(ctx context.Context, cfg config, p *plan.Plan, q *ecrpq.Query, g *graph.DB, opts ecrpq.Options, out, errw io.Writer) error {
	count := 0
	for a, err := range p.Stream(ctx, g, ecrpq.StreamOptions{Options: opts, Limit: cfg.limit}) {
		if err != nil {
			return err
		}
		count++
		if q.IsBoolean() {
			fmt.Fprintln(out, true)
			continue
		}
		if err := printAnswer(cfg, q, g, a, out); err != nil {
			return err
		}
	}
	if q.IsBoolean() && count == 0 {
		fmt.Fprintln(out, false)
	}
	fmt.Fprintf(errw, "%d answers (limit %d)\n", count, cfg.limit)
	return nil
}

func printAnswer(cfg config, q *ecrpq.Query, g *graph.DB, a ecrpq.Answer, out io.Writer) error {
	for i, v := range a.Nodes {
		if i > 0 {
			fmt.Fprint(out, ", ")
		}
		fmt.Fprint(out, g.Name(v))
	}
	for _, p := range a.Paths {
		fmt.Fprintf(out, " | %s", p.Format(g))
	}
	fmt.Fprintln(out)
	if cfg.nPaths > 0 && len(q.HeadPaths) > 0 {
		pa, err := ecrpq.BuildPathAutomaton(q, g, a.Nodes, ecrpq.Options{MaxProductStates: cfg.budget})
		if err != nil {
			return err
		}
		for _, tuple := range pa.Enumerate(cfg.nPaths, cfg.maxLen) {
			fmt.Fprint(out, "    paths:")
			for _, p := range tuple {
				fmt.Fprintf(out, " %q", p.LabelString())
			}
			fmt.Fprintln(out)
		}
	}
	return nil
}

// runReplay drives the mutation/replay mode: graph text lines mutate
// the store in place, and every `query` line pins the current snapshot
// and evaluates the prepared plan against it — the mixed read/write
// serving path. Mutations after a query do not disturb answers already
// printed (they were computed from an immutable snapshot), and each
// query line reports the epoch it read. With a cache (-cache), repeated
// materialized queries at an unchanged epoch are served from it; qc may
// be nil (uncached).
func runReplay(ctx context.Context, cfg config, p *plan.Plan, q *ecrpq.Query, g *graph.DB, script io.Reader, opts ecrpq.Options, qc *qcache.Cache, out, errw io.Writer) error {
	sc := bufio.NewScanner(script)
	lineNo := 0
	queries := 0
	lineErrs := 0
	var firstErr error
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if line != "query" {
			if err := graph.ApplyTextLine(g, line); err != nil {
				// Tolerant-continue: a bad line is reported and counted,
				// the rest of the script still replays, and the run exits
				// non-zero at the end — a long replay surfaces every bad
				// line in one pass instead of one per run.
				lineErrs++
				err = fmt.Errorf("replay line %d: %w", lineNo, err)
				if firstErr == nil {
					firstErr = err
				}
				fmt.Fprintf(errw, "%v\n", err)
			}
			continue
		}
		queries++
		s := g.Snapshot()
		fmt.Fprintf(out, "-- query %d @ epoch %d (%d nodes, %d edges, delta %d)\n",
			queries, s.Epoch(), s.NumNodes(), s.NumEdges(), s.DeltaEdges())
		count := 0
		cached := false
		if cfg.limit > 0 {
			for a, err := range p.StreamSnapshot(ctx, s, ecrpq.StreamOptions{Options: opts, Limit: cfg.limit}) {
				if err != nil {
					return err
				}
				count++
				if q.IsBoolean() {
					continue
				}
				if err := printAnswer(cfg, q, g, a, out); err != nil {
					return err
				}
			}
		} else {
			res, hit, err := p.EvalSnapshotCached(ctx, s, opts, qc)
			if err != nil {
				return err
			}
			count = len(res.Answers)
			cached = hit
			if !q.IsBoolean() {
				for _, a := range res.Answers {
					if err := printAnswer(cfg, q, g, a, out); err != nil {
						return err
					}
				}
			}
		}
		if q.IsBoolean() {
			fmt.Fprintln(out, count > 0)
		}
		suffix := ""
		if cached {
			suffix = " (cached)"
		}
		fmt.Fprintf(errw, "query %d: epoch %d, %d answers%s\n", queries, s.Epoch(), count, suffix)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	fmt.Fprintf(errw, "replay: %d lines, %d queries, %d line error(s), final epoch %d\n",
		lineNo, queries, lineErrs, g.Epoch())
	if qc != nil {
		st := qc.Stats()
		fmt.Fprintf(errw, "cache: %d hits (%d revalidated, %d incremental), %d misses, %d single-flight waits, %d dead-epoch drops, %d/%d bytes\n",
			st.Hits+st.Revalidated+st.Incremental, st.Revalidated, st.Incremental,
			st.Misses, st.Waits, st.DeadDropped, st.Bytes, st.MaxBytes)
	}
	if lineErrs > 0 {
		// Non-zero exit: the first failure names its line, the count
		// says how many more the transcript above reported.
		return fmt.Errorf("replay: %d line error(s): %w", lineErrs, firstErr)
	}
	return nil
}

// openGraph builds the store run evaluates against: with -data, the
// durable segment+WAL directory is recovered (and seeded from -graph
// via one bulk import iff the store is empty — the same rule ecrpqd
// applies, so the CLI and the daemon can share a directory); otherwise
// the graph is parsed from the input text into memory.
func openGraph(cfg config, in io.Reader, errw io.Writer) (*graph.DB, error) {
	if cfg.dataDir == "" {
		return graph.ParseText(in)
	}
	g, err := graph.OpenDir(cfg.dataDir)
	if err != nil {
		return nil, err
	}
	rec := g.Recovery()
	fmt.Fprintf(errw, "recovered %s: segment epoch %d, %d wal records replayed, epoch %d\n",
		cfg.dataDir, rec.SegmentEpoch, rec.WALReplayed, g.Epoch())
	if cfg.importIn && in != nil {
		if g.Epoch() == 0 {
			if err := g.Bulk(func() error { return graph.ParseTextInto(g, in) }); err != nil {
				g.Close()
				return nil, err
			}
			fmt.Fprintf(errw, "imported -graph into %s: epoch %d\n", cfg.dataDir, g.Epoch())
		} else {
			fmt.Fprintf(errw, "store is non-empty; ignoring -graph\n")
		}
	}
	return g, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ecrpq:", err)
	os.Exit(1)
}
