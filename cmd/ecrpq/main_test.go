package main

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

const sampleGraph = `
edge alice k bob
edge bob k carol
edge alice f carol
`

func TestRunNodeQuery(t *testing.T) {
	var out, errw strings.Builder
	err := run(config{query: "Ans(x,y) <- (x,p,y), kk(p)"},
		strings.NewReader(sampleGraph), &out, &errw)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "alice, carol") {
		t.Errorf("output = %q", out.String())
	}
	if !strings.Contains(errw.String(), "1 answers") {
		t.Errorf("stderr = %q", errw.String())
	}
}

func TestRunBooleanQuery(t *testing.T) {
	var out, errw strings.Builder
	err := run(config{query: "Ans() <- (x,p,y), f(p)"},
		strings.NewReader(sampleGraph), &out, &errw)
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out.String()) != "true" {
		t.Errorf("output = %q", out.String())
	}
}

func TestRunPathEnumeration(t *testing.T) {
	var out, errw strings.Builder
	err := run(config{query: "Ans(x,y,p) <- (x,p,y), k+(p)", nPaths: 5, maxLen: 5},
		strings.NewReader(sampleGraph), &out, &errw)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `paths: "kk"`) {
		t.Errorf("output = %q", out.String())
	}
}

func TestRunLimit(t *testing.T) {
	// Streaming with -limit 1 prints exactly one (unsorted) answer and
	// reports the limit on stderr.
	var out, errw strings.Builder
	err := run(config{query: "Ans(x,y) <- (x,p,y), k(p)", limit: 1},
		strings.NewReader(sampleGraph), &out, &errw)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 1 {
		t.Errorf("limit 1 printed %d answers: %q", len(lines), out.String())
	}
	if !strings.Contains(errw.String(), "1 answers (limit 1)") {
		t.Errorf("stderr = %q", errw.String())
	}
}

func TestRunLimitBoolean(t *testing.T) {
	var out, errw strings.Builder
	err := run(config{query: "Ans() <- (x,p,y), f(p)", limit: 1},
		strings.NewReader(sampleGraph), &out, &errw)
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out.String()) != "true" {
		t.Errorf("output = %q", out.String())
	}
}

func TestRunTimeout(t *testing.T) {
	// A one-nanosecond deadline must abort with a context error rather
	// than evaluating.
	var out, errw strings.Builder
	err := run(config{query: "Ans(x,y) <- (x,p,y), k+(p)", timeout: time.Nanosecond},
		strings.NewReader(sampleGraph), &out, &errw)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestRunExplain(t *testing.T) {
	var out, errw strings.Builder
	err := run(config{query: "Ans(x,y) <- (x,p,y), k+(p)", explain: true},
		strings.NewReader(sampleGraph), &out, &errw)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errw.String(), "1 component(s)") {
		t.Errorf("stderr = %q", errw.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out, errw strings.Builder
	if err := run(config{query: "not a query"}, strings.NewReader(sampleGraph), &out, &errw); err == nil {
		t.Error("bad query should error")
	}
	if err := run(config{query: "Ans() <- (x,p,y), k(p)"}, strings.NewReader("junk line"), &out, &errw); err == nil {
		t.Error("bad graph should error")
	}
}

func TestRunReplay(t *testing.T) {
	// Mutation/replay mode: the same query evaluated before and after
	// interleaved edge loads must see the growing graph, with the epoch
	// advancing between query lines.
	script := `
# no k-k path yet
query
edge bob k carol
query
edge carol k dave
query
`
	dir := t.TempDir()
	path := filepath.Join(dir, "replay.txt")
	if err := os.WriteFile(path, []byte(script), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errw strings.Builder
	err := run(config{query: "Ans(x,y) <- (x,p,y), kk(p)", replay: path},
		strings.NewReader("edge alice k bob\n"), &out, &errw)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errw.String(), "query 1: epoch 3, 0 answers") {
		t.Errorf("stderr = %q, want query 1 with 0 answers at epoch 3", errw.String())
	}
	if !strings.Contains(errw.String(), "query 2: epoch 5, 1 answers") {
		t.Errorf("stderr = %q, want query 2 with 1 answer (alice→carol)", errw.String())
	}
	if !strings.Contains(errw.String(), "query 3: epoch 7, 2 answers") {
		t.Errorf("stderr = %q, want query 3 with 2 answers", errw.String())
	}
	if !strings.Contains(out.String(), "alice, carol") || !strings.Contains(out.String(), "bob, dave") {
		t.Errorf("output = %q, want alice→carol and bob→dave", out.String())
	}
	if !strings.Contains(errw.String(), "replay: ") {
		t.Errorf("stderr = %q, want a replay summary line", errw.String())
	}
}

// TestRunReplayArrowNoLabel is the regression test for the replay-path
// crash: the minimally spaced arrow line `a -> b` used to panic inside
// graph.ApplyTextLine (slice out of range), killing the serving
// process; it must surface as a per-line error instead.
func TestRunReplayArrowNoLabel(t *testing.T) {
	script := "query\na -> b\nquery\n"
	dir := t.TempDir()
	path := filepath.Join(dir, "replay.txt")
	if err := os.WriteFile(path, []byte(script), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errw strings.Builder
	err := run(config{query: "Ans(x,y) <- (x,p,y), k(p)", replay: path},
		strings.NewReader(sampleGraph), &out, &errw)
	if err == nil || !strings.Contains(err.Error(), "replay line 2") {
		t.Fatalf("err = %v, want a replay line 2 error (not a panic)", err)
	}
}

// TestRunReplayCached: with -cache, repeated query lines at an
// unchanged epoch are served from the result cache (reported on
// stderr), a mutation invalidates, and the cached answers match the
// uncached run byte for byte.
func TestRunReplayCached(t *testing.T) {
	script := `
query
query
edge bob k carol
query
query
edge alice z bob
query
`
	dir := t.TempDir()
	path := filepath.Join(dir, "replay.txt")
	if err := os.WriteFile(path, []byte(script), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := config{query: "Ans(x,y) <- (x,p,y), kk(p)", replay: path}
	var plainOut, plainErr strings.Builder
	if err := run(cfg, strings.NewReader("edge alice k bob\n"), &plainOut, &plainErr); err != nil {
		t.Fatal(err)
	}
	cfg.cache = 1 << 20
	var out, errw strings.Builder
	if err := run(cfg, strings.NewReader("edge alice k bob\n"), &out, &errw); err != nil {
		t.Fatal(err)
	}
	if out.String() != plainOut.String() {
		t.Errorf("cached output differs from uncached:\n%q\n%q", out.String(), plainOut.String())
	}
	se := errw.String()
	if !strings.Contains(se, "query 2: epoch 3, 0 answers (cached)") {
		t.Errorf("stderr = %q, want query 2 served from cache", se)
	}
	if !strings.Contains(se, "query 3: epoch 5, 1 answers\n") {
		t.Errorf("stderr = %q, want query 3 recomputed after the write", se)
	}
	if !strings.Contains(se, "query 4: epoch 5, 1 answers (cached)") {
		t.Errorf("stderr = %q, want query 4 served from cache", se)
	}
	// The 'z' edge touches no label the query can consume: the stale
	// entry revalidates instead of recomputing, still reported cached.
	if !strings.Contains(se, "query 5: epoch 6, 1 answers (cached)") {
		t.Errorf("stderr = %q, want query 5 revalidated from cache", se)
	}
	if !strings.Contains(se, "cache: 3 hits (1 revalidated, 0 incremental), 2 misses") {
		t.Errorf("stderr = %q, want a cache summary splitting the serve kinds", se)
	}
}

func TestRunReplayBadLine(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "replay.txt")
	if err := os.WriteFile(path, []byte("edge only-two-fields\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errw strings.Builder
	err := run(config{query: "Ans(x,y) <- (x,p,y), k(p)", replay: path},
		strings.NewReader(sampleGraph), &out, &errw)
	if err == nil || !strings.Contains(err.Error(), "replay line 1") {
		t.Fatalf("err = %v, want a replay line error", err)
	}
}

// TestRunReplayTolerantContinue: per-line errors no longer abort the
// replay — every bad line is reported and counted, good lines (and
// queries) after them still run, the summary carries the error count,
// and the run still exits non-zero.
func TestRunReplayTolerantContinue(t *testing.T) {
	script := `
edge only-two-fields
a -> b
edge bob k carol
query
edge nope
query
`
	dir := t.TempDir()
	path := filepath.Join(dir, "replay.txt")
	if err := os.WriteFile(path, []byte(script), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errw strings.Builder
	err := run(config{query: "Ans(x,y) <- (x,p,y), k(p)", replay: path},
		strings.NewReader("edge alice k bob\n"), &out, &errw)
	if err == nil || !strings.Contains(err.Error(), "3 line error(s)") {
		t.Fatalf("err = %v, want an aggregate 3-line-error failure", err)
	}
	if !strings.Contains(err.Error(), "replay line 2") {
		t.Fatalf("err = %v, want the first failure's line number", err)
	}
	se := errw.String()
	for _, want := range []string{"replay line 2", "replay line 3", "replay line 6"} {
		if !strings.Contains(se, want) {
			t.Errorf("stderr = %q, missing %s", se, want)
		}
	}
	// Lines after the failures still applied and both queries ran: the
	// second query sees bob→carol (loaded between the bad lines).
	if !strings.Contains(se, "query 2:") {
		t.Errorf("stderr = %q, want query 2 to have run", se)
	}
	if !strings.Contains(se, "3 line error(s)") {
		t.Errorf("stderr = %q, want the error count in the summary", se)
	}
	if !strings.Contains(out.String(), "bob, carol") {
		t.Errorf("output = %q, want the post-error edge to be queryable", out.String())
	}
}

func TestRunDurableStore(t *testing.T) {
	// First run seeds the empty store from the input (bulk import),
	// second run answers from the recovered segment with no input at all,
	// and -checkpoint alone compacts without requiring a query.
	dir := t.TempDir()
	cfg := config{query: "Ans(x,y) <- (x,p,y), kk(p)", dataDir: dir, importIn: true}
	var out, errw strings.Builder
	if err := run(cfg, strings.NewReader(sampleGraph), &out, &errw); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "alice, carol") {
		t.Errorf("seeded run output = %q", out.String())
	}
	if !strings.Contains(errw.String(), "imported -graph") {
		t.Errorf("seeded run stderr = %q", errw.String())
	}

	out.Reset()
	errw.Reset()
	cfg2 := config{query: "Ans(x,y) <- (x,p,y), kk(p)", dataDir: dir}
	if err := run(cfg2, nil, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "alice, carol") {
		t.Errorf("recovered run output = %q", out.String())
	}
	if !strings.Contains(errw.String(), "recovered") {
		t.Errorf("recovered run stderr = %q", errw.String())
	}

	out.Reset()
	errw.Reset()
	if err := run(config{dataDir: dir, checkpoint: true}, nil, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errw.String(), "checkpoint:") {
		t.Errorf("checkpoint stderr = %q", errw.String())
	}
}

func TestRunDurableReplayPersists(t *testing.T) {
	// Replay-mode mutations against -data are write-ahead logged: a
	// second process sees the edge added by the first.
	dir := t.TempDir()
	script := filepath.Join(t.TempDir(), "script")
	if err := os.WriteFile(script, []byte("edge carol k dave\nquery\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errw strings.Builder
	cfg := config{query: "Ans(x,y) <- (x,p,y), kkk(p)", dataDir: dir, importIn: true, replay: script}
	if err := run(cfg, strings.NewReader(sampleGraph), &out, &errw); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "alice, dave") {
		t.Errorf("replay output = %q", out.String())
	}

	out.Reset()
	errw.Reset()
	if err := run(config{query: "Ans(x,y) <- (x,p,y), kkk(p)", dataDir: dir}, nil, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "alice, dave") {
		t.Errorf("post-restart output = %q (replayed edge lost)", out.String())
	}
}
