package main

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

const sampleGraph = `
edge alice k bob
edge bob k carol
edge alice f carol
`

func TestRunNodeQuery(t *testing.T) {
	var out, errw strings.Builder
	err := run(config{query: "Ans(x,y) <- (x,p,y), kk(p)"},
		strings.NewReader(sampleGraph), &out, &errw)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "alice, carol") {
		t.Errorf("output = %q", out.String())
	}
	if !strings.Contains(errw.String(), "1 answers") {
		t.Errorf("stderr = %q", errw.String())
	}
}

func TestRunBooleanQuery(t *testing.T) {
	var out, errw strings.Builder
	err := run(config{query: "Ans() <- (x,p,y), f(p)"},
		strings.NewReader(sampleGraph), &out, &errw)
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out.String()) != "true" {
		t.Errorf("output = %q", out.String())
	}
}

func TestRunPathEnumeration(t *testing.T) {
	var out, errw strings.Builder
	err := run(config{query: "Ans(x,y,p) <- (x,p,y), k+(p)", nPaths: 5, maxLen: 5},
		strings.NewReader(sampleGraph), &out, &errw)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `paths: "kk"`) {
		t.Errorf("output = %q", out.String())
	}
}

func TestRunLimit(t *testing.T) {
	// Streaming with -limit 1 prints exactly one (unsorted) answer and
	// reports the limit on stderr.
	var out, errw strings.Builder
	err := run(config{query: "Ans(x,y) <- (x,p,y), k(p)", limit: 1},
		strings.NewReader(sampleGraph), &out, &errw)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 1 {
		t.Errorf("limit 1 printed %d answers: %q", len(lines), out.String())
	}
	if !strings.Contains(errw.String(), "1 answers (limit 1)") {
		t.Errorf("stderr = %q", errw.String())
	}
}

func TestRunLimitBoolean(t *testing.T) {
	var out, errw strings.Builder
	err := run(config{query: "Ans() <- (x,p,y), f(p)", limit: 1},
		strings.NewReader(sampleGraph), &out, &errw)
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out.String()) != "true" {
		t.Errorf("output = %q", out.String())
	}
}

func TestRunTimeout(t *testing.T) {
	// A one-nanosecond deadline must abort with a context error rather
	// than evaluating.
	var out, errw strings.Builder
	err := run(config{query: "Ans(x,y) <- (x,p,y), k+(p)", timeout: time.Nanosecond},
		strings.NewReader(sampleGraph), &out, &errw)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestRunExplain(t *testing.T) {
	var out, errw strings.Builder
	err := run(config{query: "Ans(x,y) <- (x,p,y), k+(p)", explain: true},
		strings.NewReader(sampleGraph), &out, &errw)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errw.String(), "1 component(s)") {
		t.Errorf("stderr = %q", errw.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out, errw strings.Builder
	if err := run(config{query: "not a query"}, strings.NewReader(sampleGraph), &out, &errw); err == nil {
		t.Error("bad query should error")
	}
	if err := run(config{query: "Ans() <- (x,p,y), k(p)"}, strings.NewReader("junk line"), &out, &errw); err == nil {
		t.Error("bad graph should error")
	}
}
