package main

import (
	"strings"
	"testing"
)

const sampleGraph = `
edge alice k bob
edge bob k carol
edge alice f carol
`

func TestRunNodeQuery(t *testing.T) {
	var out, errw strings.Builder
	err := run(config{query: "Ans(x,y) <- (x,p,y), kk(p)"},
		strings.NewReader(sampleGraph), &out, &errw)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "alice, carol") {
		t.Errorf("output = %q", out.String())
	}
	if !strings.Contains(errw.String(), "1 answers") {
		t.Errorf("stderr = %q", errw.String())
	}
}

func TestRunBooleanQuery(t *testing.T) {
	var out, errw strings.Builder
	err := run(config{query: "Ans() <- (x,p,y), f(p)"},
		strings.NewReader(sampleGraph), &out, &errw)
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out.String()) != "true" {
		t.Errorf("output = %q", out.String())
	}
}

func TestRunPathEnumeration(t *testing.T) {
	var out, errw strings.Builder
	err := run(config{query: "Ans(x,y,p) <- (x,p,y), k+(p)", nPaths: 5, maxLen: 5},
		strings.NewReader(sampleGraph), &out, &errw)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `paths: "kk"`) {
		t.Errorf("output = %q", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out, errw strings.Builder
	if err := run(config{query: "not a query"}, strings.NewReader(sampleGraph), &out, &errw); err == nil {
		t.Error("bad query should error")
	}
	if err := run(config{query: "Ans() <- (x,p,y), k(p)"}, strings.NewReader("junk line"), &out, &errw); err == nil {
		t.Error("bad graph should error")
	}
}
