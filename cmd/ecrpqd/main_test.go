package main

import (
	"context"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/leakcheck"
)

// TestDaemonLifecycle boots the daemon on an ephemeral port, serves a
// preloaded query, applies a write, and then drains via context
// cancellation (the SIGTERM path) — verifying the process leaves no
// goroutines behind.
func TestDaemonLifecycle(t *testing.T) {
	leakcheck.Check(t)

	dir := t.TempDir()
	gf := filepath.Join(dir, "g.graph")
	if err := os.WriteFile(gf, []byte("edge v0 a v1\nedge v1 b v2\nedge v2 a v3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := config{
		addr:         "127.0.0.1:0",
		graphFile:    gf,
		queries:      []string{"aplus=Ans(x,y) <- (x,p,y), a+(p)"},
		timeout:      2 * time.Second,
		maxTimeout:   30 * time.Second,
		maxStale:     8,
		cacheBytes:   1 << 20,
		drainTimeout: 5 * time.Second,
	}
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() { done <- run(ctx, cfg, ready, io.Discard) }()
	// Drain runs as a cleanup so it happens on every exit path, before
	// leakcheck's final count. Idle client keep-alive connections would
	// hold server goroutines open, so they are closed first.
	t.Cleanup(func() {
		http.DefaultClient.CloseIdleConnections()
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("drain failed: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Error("daemon did not drain")
		}
	})

	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("daemon never became ready")
	}
	base := "http://" + addr

	resp, err := http.Get(base + "/query/aplus")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), `"fingerprint"`) {
		t.Fatalf("query = %d %s", resp.StatusCode, body)
	}
	resp, err = http.Post(base+"/write", "text/plain", strings.NewReader("edge v3 a v0\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("write = %d", resp.StatusCode)
	}
	resp, err = http.Get(base + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `"write_lines":1`) {
		t.Fatalf("statz missing write count: %s", body)
	}
}

// TestLoadModeAgainstDaemon runs the -load client half against a live
// daemon — the in-process version of the CI smoke pairing: a short
// fixed-seed run must complete with zero 5xx and zero transport
// errors, and the daemon must drain clean afterwards.
func TestLoadModeAgainstDaemon(t *testing.T) {
	leakcheck.Check(t)

	cfg := config{
		addr:         "127.0.0.1:0",
		sigma:        "ab",
		queries:      []string{"aplus=Ans(x,y) <- (x,p,y), a+(p)"},
		timeout:      2 * time.Second,
		maxTimeout:   30 * time.Second,
		maxStale:     8,
		cacheBytes:   1 << 20,
		drainTimeout: 5 * time.Second,
	}
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() { done <- run(ctx, cfg, ready, io.Discard) }()
	t.Cleanup(func() {
		http.DefaultClient.CloseIdleConnections()
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("drain failed: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Error("daemon did not drain")
		}
	})
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("daemon never became ready")
	}

	lcfg := cfg
	lcfg.load = "http://" + addr
	lcfg.loadDuration = 1500 * time.Millisecond
	lcfg.loadClients = 3
	lcfg.loadWritePct = 10
	lcfg.loadSeed = 42
	var out strings.Builder
	if err := runLoad(context.Background(), lcfg, &out); err != nil {
		t.Fatalf("load run failed: %v\nreport: %s", err, out.String())
	}
	if !strings.Contains(out.String(), `"ops"`) {
		t.Fatalf("report missing ops: %s", out.String())
	}
}

func TestLoadModeNoRegistry(t *testing.T) {
	// A target with an empty registry is a configuration mistake the
	// load client must name, not a zero-op "success".
	cfg := config{addr: "127.0.0.1:0", sigma: "a", drainTimeout: 5 * time.Second,
		timeout: time.Second, maxTimeout: time.Second, cacheBytes: 1 << 20}
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() { done <- run(ctx, cfg, ready, io.Discard) }()
	t.Cleanup(func() {
		http.DefaultClient.CloseIdleConnections()
		cancel()
		<-done
	})
	addr := <-ready
	lcfg := cfg
	lcfg.load = "http://" + addr
	err := runLoad(context.Background(), lcfg, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "no registered queries") {
		t.Fatalf("empty registry error = %v", err)
	}
}

func TestDaemonBadPreload(t *testing.T) {
	cfg := config{
		addr:    "127.0.0.1:0",
		queries: []string{"bad=not a query"},
		sigma:   "ab",
	}
	err := run(context.Background(), cfg, nil, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "preload") {
		t.Fatalf("bad preload error = %v", err)
	}
}

func TestDaemonBadGraphFile(t *testing.T) {
	cfg := config{addr: "127.0.0.1:0", graphFile: filepath.Join(t.TempDir(), "missing.graph")}
	if err := run(context.Background(), cfg, nil, io.Discard); err == nil {
		t.Fatal("missing graph file must fail startup")
	}
	bad := filepath.Join(t.TempDir(), "bad.graph")
	if err := os.WriteFile(bad, []byte("edge only-two-fields\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg.graphFile = bad
	if err := run(context.Background(), cfg, nil, io.Discard); err == nil {
		t.Fatal("malformed graph file must fail startup")
	}
}

