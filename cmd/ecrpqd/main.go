// Command ecrpqd serves ECRPQ evaluation over HTTP: a hardened serving
// daemon over the epoch-versioned store, with a named prepared-query
// registry, per-request deadlines and product-state budgets, bounded
// admission (explicit 429/503 backpressure instead of unbounded
// queueing), graceful degradation to bounded-staleness cached results
// under overload, per-request panic isolation, and drain-on-SIGTERM.
//
//	ecrpqd -addr :8420 -graph social.graph \
//	       -query 'friends=Ans(x,y) <- (x,p,y), knows+(p)'
//
// Endpoints:
//
//	GET  /healthz               liveness (also reports draining)
//	GET  /statz                 serving counters + cache stats (JSON)
//	GET  /queries               registry listing
//	PUT  /queries/{name}        register/replace a prepared query (body = text)
//	GET  /queries/{name}        text + compiled-plan explanation
//	GET  /query/{name}          evaluate; parameters:
//	      bind=x=node  (repeatable)   fix a head variable to a node
//	      timeout=2s                  per-request deadline (clamped)
//	      budget=100000               product-state budget
//	      maxstale=4                  permit serving a cached result up to
//	                                  N epochs behind under pressure
//	      fresh=1                     forbid degraded (stale) serving
//	      limit=100                   answers rendered (count is exact)
//	      workers=8                   parallel-BFS workers (0 = GOMAXPROCS,
//	                                  1 = sequential; same answers either way)
//	POST /write                 apply graph text lines (`edge A l B`, ...)
//
// Flags:
//
//	-addr ADDR        listen address (default :8420)
//	-data DIR         durable store directory: recover (mmap newest segment +
//	                  replay WAL) on boot, write-ahead log every mutation,
//	                  checkpoint on drain. Restarting over the same DIR serves
//	                  identical answers with no re-ingest.
//	-fsync            fsync the WAL on every write (power-loss durability;
//	                  default: process-crash durability only)
//	-graph FILE       initial graph in the text format (default: empty store).
//	                  With -data, the file is bulk-imported only when the
//	                  recovered store is empty; a recovered store wins.
//	-sigma STR        alphabet when starting from an empty store
//	-query NAME=TEXT  preload a registry entry (repeatable)
//	-concurrency N    evaluation slots (default GOMAXPROCS)
//	-queue N          admission queue bound (default 4×concurrency)
//	-timeout D        default per-request deadline (default 2s)
//	-max-timeout D    clamp for request-supplied deadlines (default 30s)
//	-budget N         default product-state budget (0 = engine default)
//	-bfs-workers N    default parallel-BFS workers (0 = GOMAXPROCS, 1 = sequential)
//	-max-stale N      cache retention window in epochs for degraded reads
//	-cache BYTES      result-cache budget (default 64 MiB)
//	-drain-timeout D  how long SIGTERM waits for in-flight requests
//
// Load-generator mode (the CI smoke job's client half): with -load URL
// the command is a closed-loop client instead of a daemon — it
// discovers the registry at URL, drives a seeded Zipf-skewed query mix
// with -load-write-pct writes for -load-duration, prints the JSON
// report, and exits non-zero on any 5xx or transport error:
//
//	ecrpqd -load http://127.0.0.1:8420 -load-duration 10s -load-seed 42
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/ecrpq"
	"repro/internal/graph"
	"repro/internal/qcache"
	"repro/internal/server"
	"repro/internal/workload"
)

type config struct {
	addr         string
	dataDir      string
	fsync        bool
	graphFile    string
	sigma        string
	queries      []string // NAME=TEXT
	concurrency  int
	queue        int
	timeout      time.Duration
	maxTimeout   time.Duration
	budget       int
	bfsWorkers   int
	maxStale     uint64
	cacheBytes   int64
	drainTimeout time.Duration

	load         string
	loadDuration time.Duration
	loadClients  int
	loadWritePct int
	loadSeed     int64
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", ":8420", "listen address")
	flag.StringVar(&cfg.dataDir, "data", "", "durable store directory (recover on boot, WAL writes, checkpoint on drain)")
	flag.BoolVar(&cfg.fsync, "fsync", false, "fsync the WAL on every write (with -data)")
	flag.StringVar(&cfg.graphFile, "graph", "", "initial graph file (text format; default empty store)")
	flag.StringVar(&cfg.sigma, "sigma", "", "alphabet for an empty store (runes)")
	flag.Func("query", "preload a prepared query as NAME=TEXT (repeatable)", func(v string) error {
		if !strings.Contains(v, "=") {
			return fmt.Errorf("want NAME=TEXT, got %q", v)
		}
		cfg.queries = append(cfg.queries, v)
		return nil
	})
	flag.IntVar(&cfg.concurrency, "concurrency", 0, "evaluation slots (0 = GOMAXPROCS)")
	flag.IntVar(&cfg.queue, "queue", 0, "admission queue bound (0 = 4×concurrency)")
	flag.DurationVar(&cfg.timeout, "timeout", 2*time.Second, "default per-request deadline")
	flag.DurationVar(&cfg.maxTimeout, "max-timeout", 30*time.Second, "clamp for request deadlines")
	flag.IntVar(&cfg.budget, "budget", 0, "default product-state budget (0 = engine default)")
	flag.IntVar(&cfg.bfsWorkers, "bfs-workers", 0, "default parallel-BFS workers (0 = GOMAXPROCS, 1 = sequential)")
	flag.Uint64Var(&cfg.maxStale, "max-stale", 8, "epoch retention window for degraded reads")
	flag.Int64Var(&cfg.cacheBytes, "cache", 64<<20, "result cache budget in bytes")
	flag.DurationVar(&cfg.drainTimeout, "drain-timeout", 15*time.Second, "SIGTERM drain deadline")
	flag.StringVar(&cfg.load, "load", "", "run as a load-generation client against this base URL instead of serving")
	flag.DurationVar(&cfg.loadDuration, "load-duration", 10*time.Second, "load run duration")
	flag.IntVar(&cfg.loadClients, "load-clients", 4, "closed-loop load clients")
	flag.IntVar(&cfg.loadWritePct, "load-write-pct", 10, "percentage of load operations that are writes")
	flag.Int64Var(&cfg.loadSeed, "load-seed", 42, "load operation-stream seed")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	if cfg.load != "" {
		if err := runLoad(ctx, cfg, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "ecrpqd:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(ctx, cfg, nil, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "ecrpqd:", err)
		os.Exit(1)
	}
}

// run builds the store and server from cfg and serves until ctx is
// canceled, then drains: new work is refused with 503 while requests
// already admitted finish (bounded by cfg.drainTimeout). When ready is
// non-nil the bound address is sent on it once the listener is up —
// the hook the daemon tests and the CI smoke script use to serve on
// ":0" without a race.
func run(ctx context.Context, cfg config, ready chan<- string, errw io.Writer) error {
	g, err := openStore(cfg, errw)
	if err != nil {
		return err
	}
	defer g.Close()
	sigma := g.Alphabet()
	for _, r := range cfg.sigma {
		sigma = append(sigma, r)
	}
	srv := server.New(server.Config{
		DB:             g,
		Env:            ecrpq.Env{Sigma: sigma},
		Cache:          qcache.New(cfg.cacheBytes),
		MaxConcurrency: cfg.concurrency,
		MaxQueue:       cfg.queue,
		DefaultTimeout: cfg.timeout,
		MaxTimeout:     cfg.maxTimeout,
		DefaultBudget:  cfg.budget,
		MaxStaleLag:    cfg.maxStale,
		BFSWorkers:     cfg.bfsWorkers,
	})
	for _, nv := range cfg.queries {
		name, text, _ := strings.Cut(nv, "=")
		if err := srv.Register(name, text); err != nil {
			return fmt.Errorf("preload query %q: %w", name, err)
		}
	}

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(errw, "ecrpqd: serving on %s (%d nodes, %d edges, epoch %d)\n",
		ln.Addr(), g.NumNodes(), g.NumEdges(), g.Epoch())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	hs := &http.Server{Handler: srv.Handler()}
	served := make(chan error, 1)
	go func() { served <- hs.Serve(ln) }()

	select {
	case err := <-served:
		return err // listener failed before shutdown was requested
	case <-ctx.Done():
	}
	fmt.Fprintln(errw, "ecrpqd: draining")
	srv.BeginDrain()
	drainCtx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
	defer cancel()
	if err := hs.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := <-served; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	// With every in-flight request done (no snapshot can still be read
	// from), persist the final state so the next boot replays nothing.
	if g.Durable() {
		if err := srv.Checkpoint(); err != nil {
			fmt.Fprintf(errw, "ecrpqd: drain checkpoint failed: %v\n", err)
		} else {
			fmt.Fprintln(errw, "ecrpqd: checkpointed")
		}
	}
	fmt.Fprintln(errw, "ecrpqd: drained")
	return nil
}

// openStore builds the daemon's store: a durable OpenDir store when
// -data is set (recovering any previous state), memory-only otherwise.
// An initial -graph file seeds the store only when it is empty — a
// recovered state wins over re-ingest, which is the whole point of the
// durable mode — and the import runs as a bulk load (one checkpoint,
// no per-line WAL records).
func openStore(cfg config, errw io.Writer) (*graph.DB, error) {
	if cfg.dataDir == "" {
		g := graph.NewDB()
		if cfg.graphFile != "" {
			f, err := os.Open(cfg.graphFile)
			if err != nil {
				return nil, err
			}
			defer f.Close()
			return graph.ParseText(f)
		}
		return g, nil
	}
	g, err := graph.OpenDirOptions(cfg.dataDir, graph.Options{SyncEveryWrite: cfg.fsync})
	if err != nil {
		return nil, fmt.Errorf("open -data %s: %w", cfg.dataDir, err)
	}
	rs := g.Recovery()
	fmt.Fprintf(errw, "ecrpqd: recovered %s: segment epoch %d (mapped=%v), %d wal records replayed, %d torn bytes dropped\n",
		cfg.dataDir, rs.SegmentEpoch, rs.Mapped, rs.WALReplayed, rs.TornBytes)
	if cfg.graphFile != "" && g.Epoch() == 0 {
		f, err := os.Open(cfg.graphFile)
		if err != nil {
			g.Close()
			return nil, err
		}
		err = g.Bulk(func() error { return graph.ParseTextInto(g, f) })
		f.Close()
		if err != nil {
			g.Close()
			return nil, fmt.Errorf("bulk import %s: %w", cfg.graphFile, err)
		}
		fmt.Fprintf(errw, "ecrpqd: bulk-imported %s (%d nodes, %d edges, one checkpoint)\n",
			cfg.graphFile, g.NumNodes(), g.NumEdges())
	} else if cfg.graphFile != "" {
		fmt.Fprintf(errw, "ecrpqd: ignoring -graph %s: store already holds epoch %d\n", cfg.graphFile, g.Epoch())
	}
	return g, nil
}

// runLoad is the client half of the CI smoke job: discover the
// target's registry, drive the closed-loop load generator against it,
// print the merged report as JSON, and fail on any 5xx or transport
// error — the daemon must degrade or refuse under pressure, never
// crash a request.
func runLoad(ctx context.Context, cfg config, out io.Writer) error {
	base := strings.TrimRight(cfg.load, "/")
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/queries", nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return fmt.Errorf("discover registry: %w", err)
	}
	var reg struct {
		Queries []string `json:"queries"`
	}
	err = json.NewDecoder(resp.Body).Decode(&reg)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("discover registry: %w", err)
	}
	if len(reg.Queries) == 0 {
		return fmt.Errorf("target %s has no registered queries (preload with -query)", base)
	}

	rep, err := workload.RunLoad(ctx, workload.LoadConfig{
		BaseURL:  base,
		Queries:  reg.Queries,
		Clients:  cfg.loadClients,
		Duration: cfg.loadDuration,
		WritePct: cfg.loadWritePct,
		MaxStale: cfg.maxStale,
		Seed:     cfg.loadSeed,
	})
	if err != nil {
		return err
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	if rep.Any5xx() {
		return fmt.Errorf("load: 5xx responses observed: %v", rep.Statuses)
	}
	if rep.Errors > 0 {
		return fmt.Errorf("load: %d transport error(s)", rep.Errors)
	}
	if rep.Ops == 0 {
		return fmt.Errorf("load: no operations completed")
	}
	return nil
}
